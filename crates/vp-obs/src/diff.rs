//! Regression attribution between two run manifests.
//!
//! `metrics-check` can say *that* simulator throughput regressed; this
//! module says *where the time went*. [`ManifestDiff::compute`] compares
//! a baseline manifest against a current one and produces a blame
//! table: per-phase wall-clock deltas (sorted by absolute movement, so
//! the guiltiest phase is first), per-counter and per-gauge deltas, and
//! the derived-rate movement (`sim_instr_per_sec`, `trace_hit_rate`).
//!
//! Three renderers serve three consumers:
//!
//! - [`ManifestDiff::render_table`] — aligned text for a terminal or CI
//!   log (the `manifest-diff` binary's default);
//! - [`ManifestDiff::render_markdown`] — a GitHub-flavoured table for
//!   `$GITHUB_STEP_SUMMARY`;
//! - [`ManifestDiff::to_json`] — machine-readable, for downstream
//!   tooling.
//!
//! The diff accepts any mix of v1/v2/v3/v4 manifests (samples do not
//! participate in the diff; they exist to localise a regression *within*
//! one run, whereas the diff localises it *between* runs). When both
//! sides carry v3 `attribution` runs, the diff additionally blames
//! accuracy movement on specific PCs and misprediction causes: replays
//! are matched by workload × config × threshold and each matched pair
//! contributes per-PC raw-accuracy deltas over the union of the two
//! top-K lists. When both sides carry a v4 `profile` section, the diff
//! blames sample-share movement per phase ("phase X went from 12% to
//! 31% of samples"). Version skew between the two sides is never an
//! error: the diff downgrades to the sections both carry and records
//! the skew in [`ManifestDiff::schema_skew`] so callers can warn.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::attribution::AttributionRun;
use crate::json::Json;
use crate::manifest::{ProfileSection, RunManifest};

/// One phase's wall-clock movement between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Hierarchical span path.
    pub path: String,
    /// Baseline total milliseconds (0 when the phase is new).
    pub base_ms: f64,
    /// Current total milliseconds (0 when the phase disappeared).
    pub cur_ms: f64,
    /// `cur_ms - base_ms`.
    pub delta_ms: f64,
    /// Relative change (`delta_ms / base_ms`); `None` when the phase is
    /// new (no baseline to be relative to).
    pub pct: Option<f64>,
}

/// One counter's (or gauge's) movement between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Metric key.
    pub key: String,
    /// Baseline value (0 when newly recorded).
    pub base: u64,
    /// Current value (0 when no longer recorded).
    pub cur: u64,
    /// `cur - base` (signed).
    pub delta: i128,
    /// Relative change; `None` when the baseline is 0.
    pub pct: Option<f64>,
}

/// One derived rate's movement.
#[derive(Debug, Clone, PartialEq)]
pub struct RateDelta {
    /// Rate name (`sim_instr_per_sec`, `trace_hit_rate`).
    pub name: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Relative change; `None` when the baseline is 0.
    pub pct: Option<f64>,
}

/// One static instruction's accuracy movement between two attributed
/// replays of the same workload × config point.
#[derive(Debug, Clone, PartialEq)]
pub struct PcAccuracyDelta {
    /// Static instruction address.
    pub pc: u64,
    /// The PC's directive in the current run (baseline's when the PC
    /// left the current top-K).
    pub directive: String,
    /// Baseline raw accuracy; `None` when the PC is new to the top-K.
    pub base_accuracy: Option<f64>,
    /// Current raw accuracy; `None` when the PC left the top-K.
    pub cur_accuracy: Option<f64>,
    /// `cur - base` (missing side treated as 0, matching counters).
    pub delta: f64,
    /// The dominant misprediction cause in the current run (baseline's
    /// when absent from the current top-K), when any miss was charged.
    pub cause: Option<String>,
}

/// Accuracy movement of one attributed replay (workload × config ×
/// threshold) between baseline and current manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionDelta {
    /// `workload/config@threshold` run label.
    pub run: String,
    /// Baseline whole-table raw accuracy.
    pub base_accuracy: f64,
    /// Current whole-table raw accuracy.
    pub cur_accuracy: f64,
    /// Baseline effective (used-prediction) accuracy.
    pub base_effective: f64,
    /// Current effective accuracy.
    pub cur_effective: f64,
    /// Per-PC blame over the union of the two runs' top-K lists,
    /// sorted by `|delta|` descending then PC; unmoved PCs omitted.
    pub pcs: Vec<PcAccuracyDelta>,
}

impl AttributionDelta {
    /// Whole-table raw-accuracy movement (current minus baseline).
    #[must_use]
    pub fn accuracy_delta(&self) -> f64 {
        self.cur_accuracy - self.base_accuracy
    }
}

/// One profiled phase's sample-share movement between two v4 manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShareDelta {
    /// Slash-separated span path.
    pub path: String,
    /// Baseline share of samples passing through this phase (0 when the
    /// phase is new).
    pub base_total: f64,
    /// Current share of samples passing through this phase.
    pub cur_total: f64,
    /// Baseline share of samples ending exactly at this phase.
    pub base_self: f64,
    /// Current share of samples ending exactly at this phase.
    pub cur_self: f64,
}

impl PhaseShareDelta {
    /// Total-share movement (current minus baseline), in `[-1, 1]`.
    #[must_use]
    pub fn delta_total(&self) -> f64 {
        self.cur_total - self.base_total
    }

    /// Self-share movement (current minus baseline), in `[-1, 1]`.
    #[must_use]
    pub fn delta_self(&self) -> f64 {
        self.cur_self - self.base_self
    }
}

/// A full attribution of the differences between two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestDiff {
    /// Baseline binary name.
    pub base_bin: String,
    /// Current binary name.
    pub cur_bin: String,
    /// Baseline end-to-end wall time, milliseconds.
    pub base_wall_ms: f64,
    /// Current end-to-end wall time, milliseconds.
    pub cur_wall_ms: f64,
    /// Phase deltas, sorted by `|delta_ms|` descending (ties broken by
    /// path, so output is deterministic).
    pub phases: Vec<PhaseDelta>,
    /// Counter deltas, sorted by `|delta|` descending then key; entries
    /// with no movement are omitted.
    pub counters: Vec<CounterDelta>,
    /// Gauge deltas, same ordering and omission rules as counters.
    pub gauges: Vec<CounterDelta>,
    /// Derived-rate movement.
    pub rates: Vec<RateDelta>,
    /// Per-replay accuracy blame (v3 manifests only; empty when either
    /// side carries no attribution, or nothing moved).
    pub attribution: Vec<AttributionDelta>,
    /// Per-phase sample-share blame (v4 manifests only; empty when
    /// either side carries no profile, or nothing moved). Sorted by
    /// `|delta_total|` descending then path.
    pub profile: Vec<PhaseShareDelta>,
    /// `(baseline schema, current schema)` when the two sides serialise
    /// under different versions — the diff covered only the sections
    /// both carry (callers surface this as a warning, never an error).
    pub schema_skew: Option<(String, String)>,
}

fn pct(base: f64, delta: f64) -> Option<f64> {
    if base == 0.0 {
        None
    } else {
        Some(delta / base)
    }
}

fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{:+.1}%", p * 100.0),
        None => "new".to_owned(),
    }
}

/// Formats an optional per-PC accuracy (`None` = the PC was outside
/// that side's top-K list).
fn fmt_opt_acc(a: Option<f64>) -> String {
    match a {
        Some(a) => format!("{:.1}%", 100.0 * a),
        None => "-".to_owned(),
    }
}

fn numeric_deltas(
    base: &std::collections::BTreeMap<String, u64>,
    cur: &std::collections::BTreeMap<String, u64>,
) -> Vec<CounterDelta> {
    let keys: BTreeSet<&String> = base.keys().chain(cur.keys()).collect();
    let mut out: Vec<CounterDelta> = keys
        .into_iter()
        .filter_map(|k| {
            let b = base.get(k).copied().unwrap_or(0);
            let c = cur.get(k).copied().unwrap_or(0);
            if b == c {
                return None; // no movement, no blame
            }
            let delta = i128::from(c) - i128::from(b);
            Some(CounterDelta {
                key: k.clone(),
                base: b,
                cur: c,
                delta,
                pct: pct(b as f64, delta as f64),
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.delta
            .abs()
            .cmp(&a.delta.abs())
            .then_with(|| a.key.cmp(&b.key))
    });
    out
}

fn attribution_deltas(base: &[AttributionRun], cur: &[AttributionRun]) -> Vec<AttributionDelta> {
    // Runs are matched by workload × config × threshold (bit-exact:
    // thresholds come from the same sweep constants on both sides).
    let key = |r: &AttributionRun| {
        (
            r.workload.clone(),
            r.config.clone(),
            r.threshold.map(f64::to_bits),
        )
    };
    let mut out = Vec::new();
    for c in cur {
        let Some(b) = base.iter().find(|b| key(b) == key(c)) else {
            continue; // new run: nothing to blame against
        };
        let base_by_pc: std::collections::BTreeMap<u64, &crate::attribution::AttributionPc> =
            b.pcs.iter().map(|p| (p.pc, p)).collect();
        let cur_by_pc: std::collections::BTreeMap<u64, &crate::attribution::AttributionPc> =
            c.pcs.iter().map(|p| (p.pc, p)).collect();
        let union: BTreeSet<u64> = base_by_pc.keys().chain(cur_by_pc.keys()).copied().collect();
        let mut pcs: Vec<PcAccuracyDelta> = union
            .into_iter()
            .filter_map(|pc| {
                let bp = base_by_pc.get(&pc);
                let cp = cur_by_pc.get(&pc);
                let base_accuracy = bp.map(|p| p.raw_accuracy());
                let cur_accuracy = cp.map(|p| p.raw_accuracy());
                let delta = cur_accuracy.unwrap_or(0.0) - base_accuracy.unwrap_or(0.0);
                if delta.abs() < 1e-12 {
                    return None; // no movement, no blame
                }
                let witness = cp.or(bp)?;
                Some(PcAccuracyDelta {
                    pc,
                    directive: witness.directive.clone(),
                    base_accuracy,
                    cur_accuracy,
                    delta,
                    cause: witness.dominant_cause().map(str::to_owned),
                })
            })
            .collect();
        pcs.sort_by(|a, b| {
            b.delta
                .abs()
                .partial_cmp(&a.delta.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.pc.cmp(&b.pc))
        });
        let base_accuracy = b.totals.raw_accuracy();
        let cur_accuracy = c.totals.raw_accuracy();
        let base_effective = b.totals.effective_accuracy();
        let cur_effective = c.totals.effective_accuracy();
        let moved = (cur_accuracy - base_accuracy).abs() > 1e-12
            || (cur_effective - base_effective).abs() > 1e-12
            || !pcs.is_empty();
        if !moved {
            continue;
        }
        out.push(AttributionDelta {
            run: c.label(),
            base_accuracy,
            cur_accuracy,
            base_effective,
            cur_effective,
            pcs,
        });
    }
    out
}

fn profile_deltas(
    base: Option<&ProfileSection>,
    cur: Option<&ProfileSection>,
) -> Vec<PhaseShareDelta> {
    let (Some(b), Some(c)) = (base, cur) else {
        return Vec::new(); // one side unprofiled: nothing to blame
    };
    let shares = |s: &ProfileSection| -> std::collections::BTreeMap<String, (f64, f64)> {
        s.phases
            .iter()
            .map(|p| (p.path.clone(), (p.total_share, p.self_share)))
            .collect()
    };
    let base_by_path = shares(b);
    let cur_by_path = shares(c);
    let paths: BTreeSet<&String> = base_by_path.keys().chain(cur_by_path.keys()).collect();
    let mut out: Vec<PhaseShareDelta> = paths
        .into_iter()
        .filter_map(|path| {
            let (base_total, base_self) = base_by_path.get(path).copied().unwrap_or((0.0, 0.0));
            let (cur_total, cur_self) = cur_by_path.get(path).copied().unwrap_or((0.0, 0.0));
            if (cur_total - base_total).abs() < 1e-12 && (cur_self - base_self).abs() < 1e-12 {
                return None; // no movement, no blame
            }
            Some(PhaseShareDelta {
                path: path.clone(),
                base_total,
                cur_total,
                base_self,
                cur_self,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.delta_total()
            .abs()
            .partial_cmp(&a.delta_total().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    out
}

impl ManifestDiff {
    /// Compares `current` against `baseline` (see the module docs).
    #[must_use]
    pub fn compute(baseline: &RunManifest, current: &RunManifest) -> ManifestDiff {
        let base_by_path: std::collections::BTreeMap<&str, f64> = baseline
            .phases
            .iter()
            .map(|p| (p.path.as_str(), p.total_ms))
            .collect();
        let cur_by_path: std::collections::BTreeMap<&str, f64> = current
            .phases
            .iter()
            .map(|p| (p.path.as_str(), p.total_ms))
            .collect();
        let paths: BTreeSet<&str> = base_by_path
            .keys()
            .chain(cur_by_path.keys())
            .copied()
            .collect();
        let mut phases: Vec<PhaseDelta> = paths
            .into_iter()
            .map(|path| {
                let base_ms = base_by_path.get(path).copied().unwrap_or(0.0);
                let cur_ms = cur_by_path.get(path).copied().unwrap_or(0.0);
                let delta_ms = cur_ms - base_ms;
                PhaseDelta {
                    path: path.to_owned(),
                    base_ms,
                    cur_ms,
                    delta_ms,
                    pct: pct(base_ms, delta_ms),
                }
            })
            .collect();
        phases.sort_by(|a, b| {
            b.delta_ms
                .abs()
                .partial_cmp(&a.delta_ms.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });

        let rate = |name: &'static str, base: f64, cur: f64| RateDelta {
            name,
            base,
            cur,
            pct: pct(base, cur - base),
        };
        ManifestDiff {
            base_bin: baseline.bin.clone(),
            cur_bin: current.bin.clone(),
            base_wall_ms: baseline.wall_ms,
            cur_wall_ms: current.wall_ms,
            phases,
            counters: numeric_deltas(&baseline.counters, &current.counters),
            gauges: numeric_deltas(&baseline.gauges, &current.gauges),
            rates: vec![
                rate(
                    "sim_instr_per_sec",
                    baseline.sim_instr_per_sec(),
                    current.sim_instr_per_sec(),
                ),
                rate(
                    "trace_hit_rate",
                    baseline.trace_hit_rate(),
                    current.trace_hit_rate(),
                ),
            ],
            attribution: attribution_deltas(&baseline.attribution, &current.attribution),
            profile: profile_deltas(baseline.profile.as_ref(), current.profile.as_ref()),
            schema_skew: (baseline.schema() != current.schema())
                .then(|| (baseline.schema().to_owned(), current.schema().to_owned())),
        }
    }

    /// End-to-end wall-clock movement in milliseconds.
    #[must_use]
    pub fn wall_delta_ms(&self) -> f64 {
        self.cur_wall_ms - self.base_wall_ms
    }

    /// Renders an aligned text blame table, showing at most `top`
    /// phases/counters/gauges each (0 means unlimited).
    #[must_use]
    pub fn render_table(&self, top: usize) -> String {
        let take = |n: usize| if top == 0 { n } else { n.min(top) };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== manifest diff: {} ({:.1} ms) -> {} ({:.1} ms), wall {:+.1} ms ({}) ==",
            self.base_bin,
            self.base_wall_ms,
            self.cur_bin,
            self.cur_wall_ms,
            self.wall_delta_ms(),
            fmt_pct(pct(self.base_wall_ms, self.wall_delta_ms())),
        );
        if !self.phases.is_empty() {
            let _ = writeln!(out, "-- phases (by |delta|) --");
            let width = self
                .phases
                .iter()
                .take(take(self.phases.len()))
                .map(|p| p.path.len())
                .max()
                .unwrap_or(5)
                .max(5);
            let _ = writeln!(
                out,
                "{:width$}  {:>12}  {:>12}  {:>12}  {:>8}",
                "phase", "base ms", "current ms", "delta ms", "delta"
            );
            for p in self.phases.iter().take(take(self.phases.len())) {
                let _ = writeln!(
                    out,
                    "{:width$}  {:>12.2}  {:>12.2}  {:>+12.2}  {:>8}",
                    p.path,
                    p.base_ms,
                    p.cur_ms,
                    p.delta_ms,
                    fmt_pct(p.pct)
                );
            }
        }
        for (title, rows) in [("counters", &self.counters), ("gauges", &self.gauges)] {
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(out, "-- {title} (by |delta|) --");
            let width = rows
                .iter()
                .take(take(rows.len()))
                .map(|c| c.key.len())
                .max()
                .unwrap_or(3)
                .max(3);
            for c in rows.iter().take(take(rows.len())) {
                let _ = writeln!(
                    out,
                    "{:width$}  {:>14} -> {:>14}  ({:+}, {})",
                    c.key,
                    c.base,
                    c.cur,
                    c.delta,
                    fmt_pct(c.pct)
                );
            }
        }
        if !self.attribution.is_empty() {
            let _ = writeln!(out, "-- attribution (accuracy blame) --");
            for a in self.attribution.iter().take(take(self.attribution.len())) {
                let _ = writeln!(
                    out,
                    "{}  raw {:.1}% -> {:.1}% ({:+.1}pp), effective {:.1}% -> {:.1}% ({:+.1}pp)",
                    a.run,
                    100.0 * a.base_accuracy,
                    100.0 * a.cur_accuracy,
                    100.0 * a.accuracy_delta(),
                    100.0 * a.base_effective,
                    100.0 * a.cur_effective,
                    100.0 * (a.cur_effective - a.base_effective),
                );
                for p in a.pcs.iter().take(take(a.pcs.len())) {
                    let _ = writeln!(
                        out,
                        "  @{:<7} [{}]  {} -> {}  ({:+.1}pp, {})",
                        p.pc,
                        p.directive,
                        fmt_opt_acc(p.base_accuracy),
                        fmt_opt_acc(p.cur_accuracy),
                        100.0 * p.delta,
                        p.cause.as_deref().unwrap_or("no misses"),
                    );
                }
            }
        }
        if !self.profile.is_empty() {
            let _ = writeln!(out, "-- profile (sample-share blame) --");
            let width = self
                .profile
                .iter()
                .take(take(self.profile.len()))
                .map(|p| p.path.len())
                .max()
                .unwrap_or(5)
                .max(5);
            for p in self.profile.iter().take(take(self.profile.len())) {
                let _ = writeln!(
                    out,
                    "{:width$}  total {:>5.1}% -> {:>5.1}% ({:+.1}pp), self {:>5.1}% -> {:>5.1}% ({:+.1}pp)",
                    p.path,
                    100.0 * p.base_total,
                    100.0 * p.cur_total,
                    100.0 * p.delta_total(),
                    100.0 * p.base_self,
                    100.0 * p.cur_self,
                    100.0 * p.delta_self(),
                );
            }
        }
        let _ = writeln!(out, "-- derived --");
        for r in &self.rates {
            let _ = writeln!(
                out,
                "{:18}  {:.3} -> {:.3}  ({})",
                r.name,
                r.base,
                r.cur,
                fmt_pct(r.pct)
            );
        }
        out
    }

    /// Renders a GitHub-flavoured Markdown blame table (for
    /// `$GITHUB_STEP_SUMMARY`), showing at most `top` rows per section
    /// (0 means unlimited).
    #[must_use]
    pub fn render_markdown(&self, top: usize) -> String {
        let take = |n: usize| if top == 0 { n } else { n.min(top) };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### Manifest diff: `{}` vs `{}`",
            self.base_bin, self.cur_bin
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Wall clock: {:.1} ms \u{2192} {:.1} ms (**{:+.1} ms**, {})",
            self.base_wall_ms,
            self.cur_wall_ms,
            self.wall_delta_ms(),
            fmt_pct(pct(self.base_wall_ms, self.wall_delta_ms())),
        );
        let _ = writeln!(out);
        if !self.phases.is_empty() {
            let _ = writeln!(
                out,
                "| phase | base ms | current ms | \u{394} ms | \u{394} |"
            );
            let _ = writeln!(out, "|---|---:|---:|---:|---:|");
            for p in self.phases.iter().take(take(self.phases.len())) {
                let _ = writeln!(
                    out,
                    "| `{}` | {:.2} | {:.2} | {:+.2} | {} |",
                    p.path,
                    p.base_ms,
                    p.cur_ms,
                    p.delta_ms,
                    fmt_pct(p.pct)
                );
            }
            let _ = writeln!(out);
        }
        for (title, rows) in [("counter", &self.counters), ("gauge", &self.gauges)] {
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(out, "| {title} | base | current | \u{394} | \u{394}% |");
            let _ = writeln!(out, "|---|---:|---:|---:|---:|");
            for c in rows.iter().take(take(rows.len())) {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {} | {:+} | {} |",
                    c.key,
                    c.base,
                    c.cur,
                    c.delta,
                    fmt_pct(c.pct)
                );
            }
            let _ = writeln!(out);
        }
        if !self.attribution.is_empty() {
            let _ = writeln!(
                out,
                "| attributed run | raw acc | \u{394} raw | effective acc | \u{394} eff | guiltiest pc |"
            );
            let _ = writeln!(out, "|---|---:|---:|---:|---:|---|");
            for a in self.attribution.iter().take(take(self.attribution.len())) {
                let guiltiest = a
                    .pcs
                    .first()
                    .map(|p| {
                        format!(
                            "`@{}` {:+.1}pp ({})",
                            p.pc,
                            100.0 * p.delta,
                            p.cause.as_deref().unwrap_or("no misses")
                        )
                    })
                    .unwrap_or_else(|| "-".to_owned());
                let _ = writeln!(
                    out,
                    "| `{}` | {:.1}% \u{2192} {:.1}% | {:+.1}pp | {:.1}% \u{2192} {:.1}% | {:+.1}pp | {} |",
                    a.run,
                    100.0 * a.base_accuracy,
                    100.0 * a.cur_accuracy,
                    100.0 * a.accuracy_delta(),
                    100.0 * a.base_effective,
                    100.0 * a.cur_effective,
                    100.0 * (a.cur_effective - a.base_effective),
                    guiltiest,
                );
            }
            let _ = writeln!(out);
        }
        if !self.profile.is_empty() {
            let _ = writeln!(
                out,
                "| profiled phase | total share | \u{394} total | self share | \u{394} self |"
            );
            let _ = writeln!(out, "|---|---:|---:|---:|---:|");
            for p in self.profile.iter().take(take(self.profile.len())) {
                let _ = writeln!(
                    out,
                    "| `{}` | {:.1}% \u{2192} {:.1}% | {:+.1}pp | {:.1}% \u{2192} {:.1}% | {:+.1}pp |",
                    p.path,
                    100.0 * p.base_total,
                    100.0 * p.cur_total,
                    100.0 * p.delta_total(),
                    100.0 * p.base_self,
                    100.0 * p.cur_self,
                    100.0 * p.delta_self(),
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "| derived rate | base | current | \u{394}% |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for r in &self.rates {
            let _ = writeln!(
                out,
                "| `{}` | {:.3} | {:.3} | {} |",
                r.name,
                r.base,
                r.cur,
                fmt_pct(r.pct)
            );
        }
        out
    }

    /// Serialises the full diff (no `top` truncation) as a JSON
    /// document under the `provp-manifest-diff/v1` schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                let mut o = Json::obj()
                    .with("path", p.path.as_str())
                    .with("base_ms", p.base_ms)
                    .with("cur_ms", p.cur_ms)
                    .with("delta_ms", p.delta_ms);
                if let Some(pc) = p.pct {
                    o = o.with("pct", pc);
                }
                o
            })
            .collect();
        let numeric = |rows: &[CounterDelta]| {
            Json::Arr(
                rows.iter()
                    .map(|c| {
                        let mut o = Json::obj()
                            .with("key", c.key.as_str())
                            .with("base", c.base)
                            .with("cur", c.cur)
                            // i128 deltas always fit f64's integer range
                            // here (u64 inputs); render as float.
                            .with("delta", c.delta as f64);
                        if let Some(pc) = c.pct {
                            o = o.with("pct", pc);
                        }
                        o
                    })
                    .collect(),
            )
        };
        let rates: Vec<Json> = self
            .rates
            .iter()
            .map(|r| {
                let mut o = Json::obj()
                    .with("name", r.name)
                    .with("base", r.base)
                    .with("cur", r.cur);
                if let Some(pc) = r.pct {
                    o = o.with("pct", pc);
                }
                o
            })
            .collect();
        let mut doc = Json::obj()
            .with("schema", "provp-manifest-diff/v1")
            .with("base_bin", self.base_bin.as_str())
            .with("cur_bin", self.cur_bin.as_str())
            .with("base_wall_ms", self.base_wall_ms)
            .with("cur_wall_ms", self.cur_wall_ms)
            .with("wall_delta_ms", self.wall_delta_ms())
            .with("phases", Json::Arr(phases))
            .with("counters", numeric(&self.counters))
            .with("gauges", numeric(&self.gauges))
            .with("rates", Json::Arr(rates));
        if !self.attribution.is_empty() {
            let runs: Vec<Json> = self
                .attribution
                .iter()
                .map(|a| {
                    let pcs: Vec<Json> = a
                        .pcs
                        .iter()
                        .map(|p| {
                            let mut o = Json::obj()
                                .with("pc", p.pc)
                                .with("directive", p.directive.as_str());
                            if let Some(acc) = p.base_accuracy {
                                o = o.with("base_accuracy", acc);
                            }
                            if let Some(acc) = p.cur_accuracy {
                                o = o.with("cur_accuracy", acc);
                            }
                            o = o.with("delta", p.delta);
                            if let Some(cause) = &p.cause {
                                o = o.with("cause", cause.as_str());
                            }
                            o
                        })
                        .collect();
                    Json::obj()
                        .with("run", a.run.as_str())
                        .with("base_accuracy", a.base_accuracy)
                        .with("cur_accuracy", a.cur_accuracy)
                        .with("base_effective", a.base_effective)
                        .with("cur_effective", a.cur_effective)
                        .with("pcs", Json::Arr(pcs))
                })
                .collect();
            doc = doc.with("attribution", Json::Arr(runs));
        }
        if !self.profile.is_empty() {
            let phases: Vec<Json> = self
                .profile
                .iter()
                .map(|p| {
                    Json::obj()
                        .with("path", p.path.as_str())
                        .with("base_total", p.base_total)
                        .with("cur_total", p.cur_total)
                        .with("delta_total", p.delta_total())
                        .with("base_self", p.base_self)
                        .with("cur_self", p.cur_self)
                        .with("delta_self", p.delta_self())
                })
                .collect();
            doc = doc.with("profile", Json::Arr(phases));
        }
        if let Some((base, cur)) = &self.schema_skew {
            doc = doc.with(
                "schema_skew",
                Json::obj()
                    .with("base", base.as_str())
                    .with("cur", cur.as_str()),
            );
        }
        doc.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::PhaseEntry;

    fn manifest(wall_ms: f64, phase_ms: &[(&str, f64)], counters: &[(&str, u64)]) -> RunManifest {
        RunManifest {
            bin: "repro-all".to_owned(),
            wall_ms,
            phases: phase_ms
                .iter()
                .map(|(path, ms)| PhaseEntry {
                    path: (*path).to_owned(),
                    count: 1,
                    total_ms: *ms,
                    min_ms: *ms,
                    max_ms: *ms,
                })
                .collect(),
            counters: counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            ..RunManifest::default()
        }
    }

    fn base_and_current() -> (RunManifest, RunManifest) {
        let base = manifest(
            100.0,
            &[("run/profile", 60.0), ("run/simulate", 30.0)],
            &[
                ("sim.instructions", 1_000),
                ("sim.wall_ns", 1_000_000_000),
                ("trace_store.requests", 10),
                ("trace_store.memory_hits", 9),
            ],
        );
        let cur = manifest(
            150.0,
            &[
                ("run/profile", 61.0),
                ("run/simulate", 75.0),
                ("run/export", 5.0),
            ],
            &[
                ("sim.instructions", 1_000),
                ("sim.wall_ns", 2_000_000_000),
                ("trace_store.requests", 10),
                ("trace_store.memory_hits", 4),
            ],
        );
        (base, cur)
    }

    #[test]
    fn blames_largest_phase_first() {
        let (base, cur) = base_and_current();
        let diff = ManifestDiff::compute(&base, &cur);
        assert!((diff.wall_delta_ms() - 50.0).abs() < 1e-9);
        // simulate moved +45, export is new (+5), profile +1.
        assert_eq!(diff.phases[0].path, "run/simulate");
        assert!((diff.phases[0].delta_ms - 45.0).abs() < 1e-9);
        assert_eq!(diff.phases[1].path, "run/export");
        assert_eq!(diff.phases[1].pct, None, "new phase has no baseline");
        assert_eq!(diff.phases[2].path, "run/profile");
    }

    #[test]
    fn unchanged_counters_are_omitted_and_movement_sorted() {
        let (base, cur) = base_and_current();
        let diff = ManifestDiff::compute(&base, &cur);
        let keys: Vec<&str> = diff.counters.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["sim.wall_ns", "trace_store.memory_hits"]);
        assert_eq!(diff.counters[1].delta, -5);
    }

    #[test]
    fn derived_rates_track_throughput_halving() {
        let (base, cur) = base_and_current();
        let diff = ManifestDiff::compute(&base, &cur);
        let sim = &diff.rates[0];
        assert_eq!(sim.name, "sim_instr_per_sec");
        assert!((sim.base - 1_000.0).abs() < 1e-9);
        assert!((sim.cur - 500.0).abs() < 1e-9);
        assert!((sim.pct.unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn renders_all_three_formats() {
        let (base, cur) = base_and_current();
        let diff = ManifestDiff::compute(&base, &cur);

        let table = diff.render_table(0);
        assert!(table.contains("run/simulate"));
        assert!(table.contains("+45.00"));
        assert!(table.contains("sim_instr_per_sec"));

        let md = diff.render_markdown(0);
        assert!(md.starts_with("### Manifest diff"));
        assert!(md.contains("| `run/simulate` |"));
        assert!(md.contains("| `sim.wall_ns` |"));

        let json = Json::parse(&diff.to_json()).expect("diff JSON parses");
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("provp-manifest-diff/v1")
        );
        assert_eq!(
            json.get("phases").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn top_limits_rows_per_section() {
        let (base, cur) = base_and_current();
        let diff = ManifestDiff::compute(&base, &cur);
        let table = diff.render_table(1);
        assert!(table.contains("run/simulate"));
        assert!(!table.contains("run/profile"));
        let md = diff.render_markdown(1);
        assert!(md.contains("run/simulate"));
        assert!(!md.contains("run/profile"));
    }

    #[test]
    fn identical_manifests_diff_to_nothing() {
        let (base, _) = base_and_current();
        let diff = ManifestDiff::compute(&base, &base.clone());
        assert_eq!(diff.wall_delta_ms(), 0.0);
        assert!(diff.counters.is_empty());
        assert!(diff.gauges.is_empty());
        assert!(diff.phases.iter().all(|p| p.delta_ms == 0.0));
        assert!(diff.attribution.is_empty());
    }

    fn attributed(raw_correct: u64, pc_correct: u64) -> RunManifest {
        use crate::attribution::{AttributionPc, AttributionRun, AttributionTotals};
        let mut causes = std::collections::BTreeMap::new();
        causes.insert("stride-break".to_owned(), 100 - pc_correct);
        let (base, _) = base_and_current();
        base.clone().with_attribution(vec![AttributionRun {
            workload: "compress".to_owned(),
            config: "stride[512x2]/profile".to_owned(),
            threshold: Some(0.9),
            totals: AttributionTotals {
                pcs: 1,
                accesses: 1000,
                hits: 900,
                raw_correct,
                speculated: 800,
                speculated_correct: raw_correct.min(800),
                causes: causes.clone(),
            },
            pcs: vec![AttributionPc {
                pc: 42,
                directive: "stride".to_owned(),
                accesses: 100,
                hits: 95,
                raw_correct: pc_correct,
                speculated: 90,
                speculated_correct: pc_correct.min(90),
                causes,
                profiled_accuracy: Some(0.95),
                drift: None,
            }],
        }])
    }

    #[test]
    fn attribution_blames_the_moved_pc() {
        let diff = ManifestDiff::compute(&attributed(900, 90), &attributed(700, 40));
        assert_eq!(diff.attribution.len(), 1);
        let a = &diff.attribution[0];
        assert_eq!(a.run, "compress/stride[512x2]/profile@0.90");
        assert!((a.accuracy_delta() + 0.2).abs() < 1e-9);
        assert_eq!(a.pcs.len(), 1);
        assert_eq!(a.pcs[0].pc, 42);
        assert!((a.pcs[0].delta + 0.5).abs() < 1e-9);
        assert_eq!(a.pcs[0].cause.as_deref(), Some("stride-break"));

        let table = diff.render_table(0);
        assert!(table.contains("-- attribution (accuracy blame) --"));
        assert!(table.contains("@42"));
        let md = diff.render_markdown(0);
        assert!(md.contains("| `compress/stride[512x2]/profile@0.90` |"));
        assert!(md.contains("`@42`"));
        let json = Json::parse(&diff.to_json()).unwrap();
        let runs = json.get("attribution").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0].get("pcs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn identical_attribution_is_omitted() {
        let diff = ManifestDiff::compute(&attributed(900, 90), &attributed(900, 90));
        assert!(diff.attribution.is_empty());
        assert!(!diff.render_table(0).contains("accuracy blame"));
        assert!(!diff.to_json().contains("\"attribution\""));
    }

    fn profiled(profile_share: f64) -> RunManifest {
        use crate::manifest::{PhaseShare, ProfileSection};
        let (base, _) = base_and_current();
        base.with_profile(Some(ProfileSection {
            hz: 99,
            samples: 1000,
            dropped: 0,
            threads: 2,
            hot_stacks: Vec::new(),
            phases: vec![
                PhaseShare {
                    path: "run".to_owned(),
                    self_share: 0.0,
                    total_share: 1.0,
                },
                PhaseShare {
                    path: "run/profile".to_owned(),
                    self_share: profile_share,
                    total_share: profile_share,
                },
                PhaseShare {
                    path: "run/simulate".to_owned(),
                    self_share: 1.0 - profile_share,
                    total_share: 1.0 - profile_share,
                },
            ],
        }))
    }

    #[test]
    fn profile_blames_the_phase_that_grew() {
        // "phase run/profile went from 12% to 31% of samples".
        let diff = ManifestDiff::compute(&profiled(0.12), &profiled(0.31));
        assert!(diff.schema_skew.is_none(), "both sides are v4");
        assert_eq!(diff.profile.len(), 2, "the unmoved root is omitted");
        let p = diff
            .profile
            .iter()
            .find(|p| p.path == "run/profile")
            .expect("the grown phase is blamed");
        assert!((p.delta_total() - 0.19).abs() < 1e-9);
        assert!((p.delta_self() - 0.19).abs() < 1e-9);

        let table = diff.render_table(0);
        assert!(table.contains("-- profile (sample-share blame) --"));
        assert!(table.contains("12.0% ->  31.0% (+19.0pp)"));
        let md = diff.render_markdown(0);
        assert!(md.contains("| `run/profile` | 12.0% \u{2192} 31.0% | +19.0pp |"));
        let json = Json::parse(&diff.to_json()).unwrap();
        let rows = json.get("profile").and_then(Json::as_arr).unwrap();
        assert!(rows
            .iter()
            .any(|r| r.get("path").and_then(Json::as_str) == Some("run/profile")));
    }

    #[test]
    fn identical_profiles_diff_to_nothing() {
        let diff = ManifestDiff::compute(&profiled(0.5), &profiled(0.5));
        assert!(diff.profile.is_empty());
        assert!(!diff.render_table(0).contains("sample-share blame"));
        assert!(!diff.to_json().contains("\"profile\""));
    }

    #[test]
    fn version_skew_downgrades_to_common_sections() {
        // A v2 baseline (samples, no profile) against a v4 current: the
        // diff must succeed, cover the shared sections, skip the profile
        // blame, and record the skew for the caller's warning.
        let (base, _) = base_and_current();
        let v2_base = base.with_samples(vec![crate::sampler::Sample {
            t_ms: 1.0,
            counters: std::collections::BTreeMap::new(),
            gauges: std::collections::BTreeMap::new(),
        }]);
        assert_eq!(v2_base.schema(), crate::manifest::SCHEMA_V2);
        let v4_cur = profiled(0.5);
        assert_eq!(v4_cur.schema(), crate::manifest::SCHEMA_V4);

        let diff = ManifestDiff::compute(&v2_base, &v4_cur);
        assert_eq!(
            diff.schema_skew,
            Some((
                crate::manifest::SCHEMA_V2.to_owned(),
                crate::manifest::SCHEMA_V4.to_owned()
            ))
        );
        assert!(
            diff.profile.is_empty(),
            "an unprofiled side yields no share blame"
        );
        // Shared sections still diff (identical content → no movement).
        assert!(diff.phases.iter().all(|p| p.delta_ms == 0.0));
        let json = Json::parse(&diff.to_json()).unwrap();
        let skew = json.get("schema_skew").expect("skew is serialised");
        assert_eq!(
            skew.get("base").and_then(Json::as_str),
            Some(crate::manifest::SCHEMA_V2)
        );
        assert_eq!(
            skew.get("cur").and_then(Json::as_str),
            Some(crate::manifest::SCHEMA_V4)
        );
    }
}
