//! Workload identities.

use std::fmt;

/// The nine workloads, named for the SPEC95 benchmarks they stand in for
/// (the paper's Table 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadKind {
    /// 099.go — game playing.
    Go,
    /// 124.m88ksim — a processor simulator.
    M88ksim,
    /// 126.gcc — a C compiler.
    Gcc,
    /// 129.compress — adaptive Lempel-Ziv data compression.
    Compress,
    /// 130.li — a Lisp interpreter.
    Li,
    /// 132.ijpeg — a JPEG encoder.
    Ijpeg,
    /// 134.perl — a Perl interpreter.
    Perl,
    /// 147.vortex — an object-oriented database.
    Vortex,
    /// 107.mgrid — a multigrid solver (SPEC-fp).
    Mgrid,
    /// 102.swim — shallow-water equations (SPEC-fp; appears in the paper's
    /// Figure 2.2 characterisation, not in its Table 4.1 experiments).
    Swim,
    /// 101.tomcatv — mesh generation (SPEC-fp; Figure 2.2 only, like swim).
    Tomcatv,
    /// 103.su2cor — SU(2) lattice gauge theory (SPEC-fp; Figure 2.2 only).
    Su2cor,
    /// 104.hydro2d — hydrodynamical equations (SPEC-fp; Figure 2.2 only).
    Hydro2d,
}

impl WorkloadKind {
    /// The paper's Table 4.1 workloads, in its presentation order.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::Go,
        WorkloadKind::M88ksim,
        WorkloadKind::Gcc,
        WorkloadKind::Compress,
        WorkloadKind::Li,
        WorkloadKind::Ijpeg,
        WorkloadKind::Perl,
        WorkloadKind::Vortex,
        WorkloadKind::Mgrid,
    ];

    /// Every workload, including the four Figure-2.2-only FP codes.
    pub const ALL_EXTENDED: [WorkloadKind; 13] = [
        WorkloadKind::Go,
        WorkloadKind::M88ksim,
        WorkloadKind::Gcc,
        WorkloadKind::Compress,
        WorkloadKind::Li,
        WorkloadKind::Ijpeg,
        WorkloadKind::Perl,
        WorkloadKind::Vortex,
        WorkloadKind::Mgrid,
        WorkloadKind::Swim,
        WorkloadKind::Tomcatv,
        WorkloadKind::Su2cor,
        WorkloadKind::Hydro2d,
    ];

    /// The floating-point subset (the five FP codes of the paper's
    /// Figure 2.2).
    pub const FP: [WorkloadKind; 5] = [
        WorkloadKind::Mgrid,
        WorkloadKind::Swim,
        WorkloadKind::Tomcatv,
        WorkloadKind::Su2cor,
        WorkloadKind::Hydro2d,
    ];

    /// The integer subset (everything except `mgrid`).
    pub const INT: [WorkloadKind; 8] = [
        WorkloadKind::Go,
        WorkloadKind::M88ksim,
        WorkloadKind::Gcc,
        WorkloadKind::Compress,
        WorkloadKind::Li,
        WorkloadKind::Ijpeg,
        WorkloadKind::Perl,
        WorkloadKind::Vortex,
    ];

    /// The short benchmark name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Go => "go",
            WorkloadKind::M88ksim => "m88ksim",
            WorkloadKind::Gcc => "gcc",
            WorkloadKind::Compress => "compress",
            WorkloadKind::Li => "li",
            WorkloadKind::Ijpeg => "ijpeg",
            WorkloadKind::Perl => "perl",
            WorkloadKind::Vortex => "vortex",
            WorkloadKind::Mgrid => "mgrid",
            WorkloadKind::Swim => "swim",
            WorkloadKind::Tomcatv => "tomcatv",
            WorkloadKind::Su2cor => "su2cor",
            WorkloadKind::Hydro2d => "hydro2d",
        }
    }

    /// Parses a short name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        WorkloadKind::ALL_EXTENDED
            .into_iter()
            .find(|k| k.name() == name)
    }

    /// Whether this is a floating-point (SPEC-fp) workload.
    #[must_use]
    pub fn is_fp(self) -> bool {
        WorkloadKind::FP.contains(&self)
    }

    /// Whether the analogue has a *large* static working set of
    /// value-producing instructions — the property §5.2 of the paper ties
    /// to profiting from profile-guided table admission (go, gcc, li, perl,
    /// vortex) versus not (m88ksim, compress, ijpeg, mgrid).
    #[must_use]
    pub fn large_working_set(self) -> bool {
        matches!(
            self,
            WorkloadKind::Go
                | WorkloadKind::Gcc
                | WorkloadKind::Li
                | WorkloadKind::Perl
                | WorkloadKind::Vortex
        )
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in WorkloadKind::ALL_EXTENDED {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(k));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }

    #[test]
    fn sets_partition_correctly() {
        assert_eq!(
            WorkloadKind::ALL.len(),
            9,
            "the paper's Table 4.1 has nine benchmarks"
        );
        assert_eq!(WorkloadKind::INT.len(), 8);
        assert!(!WorkloadKind::INT.contains(&WorkloadKind::Mgrid));
        assert!(WorkloadKind::INT.iter().all(|k| !k.is_fp()));
        assert!(WorkloadKind::FP.iter().all(|k| k.is_fp()));
        for k in WorkloadKind::ALL {
            assert!(WorkloadKind::ALL_EXTENDED.contains(&k));
        }
        assert!(!WorkloadKind::ALL.contains(&WorkloadKind::Swim));
        assert!(!WorkloadKind::ALL.contains(&WorkloadKind::Tomcatv));
    }

    #[test]
    fn working_set_split_matches_paper_observation() {
        use WorkloadKind::*;
        for k in [Go, Gcc, Li, Perl, Vortex] {
            assert!(k.large_working_set());
        }
        for k in [
            M88ksim, Compress, Ijpeg, Mgrid, Swim, Tomcatv, Su2cor, Hydro2d,
        ] {
            assert!(!k.large_working_set());
        }
    }
}
