//! Deterministic workload input sets.

use std::fmt;

use vp_rng::Rng;

/// One input set for a workload run: the analogue of a SPEC input file.
///
/// Carries only an identity and a seed; each workload generator derives its
/// input data (array contents, data-carried loop bounds) deterministically
/// from the seed, so every experiment in the workspace is reproducible
/// bit-for-bit.
///
/// # Examples
///
/// ```
/// use vp_workloads::InputSet;
/// let train: Vec<InputSet> = InputSet::train_set(5);
/// assert_eq!(train.len(), 5);
/// assert_ne!(train[0].seed(), train[1].seed());
/// let r = InputSet::reference();
/// assert!(train.iter().all(|t| t.seed() != r.seed()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputSet {
    id: u32,
    seed: u64,
}

const TRAIN_SEED_BASE: u64 = 0x5eed_0000_0000_0000;
const REFERENCE_SEED: u64 = 0xdead_beef_cafe_f00d;

impl InputSet {
    /// The `i`-th training input (the paper profiles with n = 5 of these).
    #[must_use]
    pub fn train(i: u32) -> Self {
        InputSet {
            id: i,
            seed: TRAIN_SEED_BASE ^ (u64::from(i) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// `n` training inputs, `train(0) … train(n-1)`.
    #[must_use]
    pub fn train_set(n: u32) -> Vec<Self> {
        (0..n).map(InputSet::train).collect()
    }

    /// The held-out *reference* input: used for evaluation runs, never for
    /// profiling — the paper's "real input files (provided by the user)".
    #[must_use]
    pub fn reference() -> Self {
        InputSet {
            id: u32::MAX,
            seed: REFERENCE_SEED,
        }
    }

    /// The input's identity (training index, or `u32::MAX` for reference).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Whether this is the held-out reference input.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.id == u32::MAX
    }

    /// The raw seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG for one aspect of data generation; different
    /// `salt`s give independent streams.
    #[must_use]
    pub fn rng(&self, salt: u64) -> Rng {
        Rng::seed_from_u64(self.seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// A small deterministic size variation in `lo..=hi`, so inputs differ
    /// in problem size the way different SPEC input files do.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn size_in(&self, salt: u64, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty size range");
        self.rng(salt).gen_range(lo..=hi)
    }
}

impl fmt::Display for InputSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.id == u32::MAX {
            write!(f, "ref")
        } else {
            write!(f, "train{}", self.id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_salt() {
        let a: u64 = InputSet::train(0).rng(1).gen_u64();
        let b: u64 = InputSet::train(0).rng(1).gen_u64();
        let c: u64 = InputSet::train(0).rng(2).gen_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn train_inputs_are_distinct() {
        let seeds: Vec<u64> = InputSet::train_set(8).iter().map(InputSet::seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn size_in_respects_bounds_and_varies() {
        let sizes: Vec<u64> = InputSet::train_set(5)
            .iter()
            .map(|i| i.size_in(7, 10, 20))
            .collect();
        assert!(sizes.iter().all(|&s| (10..=20).contains(&s)));
        assert!(
            sizes.windows(2).any(|w| w[0] != w[1]),
            "sizes should vary across inputs"
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(InputSet::train(3).to_string(), "train3");
        assert_eq!(InputSet::reference().to_string(), "ref");
    }

    #[test]
    fn reference_is_flagged() {
        assert!(InputSet::reference().is_reference());
        assert!(!InputSet::train(0).is_reference());
    }
}
