#![warn(missing_docs)]

//! # vp-workloads — nine SPEC95-analogue synthetic workloads
//!
//! The paper evaluates on nine SPEC95 programs (Table 4.1). SPEC sources,
//! binaries and input files cannot be redistributed — and this workspace
//! targets its own ISA anyway — so each benchmark is replaced by a synthetic
//! **algorithmic analogue**, written in `vp-isa` assembly via the program
//! builder, that reproduces the *structural* properties the paper's
//! phenomena rest on:
//!
//! | SPEC95        | analogue here                 | key structure |
//! |---------------|-------------------------------|---------------|
//! | 099.go        | [`programs::go`] — game-tree position evaluator | pattern-table lookups, data-dependent scores, large code |
//! | 124.m88ksim   | [`programs::m88ksim`] — guest-CPU interpreter | small hot loop, highly predictable chains |
//! | 126.gcc       | [`programs::gcc`] — lexer + symbol-table + constant folder | very large static working set |
//! | 129.compress  | [`programs::compress`] — LZW-style hasher | data-dependent hashing, poor predictability |
//! | 130.li        | [`programs::li`] — cons-cell list interpreter | pointer chasing, last-value reuse |
//! | 132.ijpeg     | [`programs::ijpeg`] — blocked DCT + quantiser | dense strided loops |
//! | 134.perl      | [`programs::perl`] — string hash + opcode dispatcher | mixed, medium code |
//! | 147.vortex    | [`programs::vortex`] — OO record store transactions | large code, predictable field access |
//! | 107.mgrid     | [`programs::mgrid`] — FP stencil relaxation | FP init vs computation phases |
//! | 102.swim¹     | [`programs::swim`] — shallow-water stepping | three coupled FP fields, per-step constants |
//! | 101.tomcatv¹  | [`programs::tomcatv`] — mesh relaxation + residual reduction | two-pass FP structure |
//! | 103.su2cor¹   | [`programs::su2cor`] — SU(2) lattice link products | dense quaternion FP chains |
//! | 104.hydro2d¹  | [`programs::hydro2d`] — two-pass hydrodynamic stepping | periodic Lax scheme |
//!
//! ¹ Figure-2.2-only FP codes (not in the paper's Table 4.1 experiment
//! set): in [`WorkloadKind::ALL_EXTENDED`] but not [`WorkloadKind::ALL`].
//!
//! Every workload is parameterised by an [`InputSet`]: the *text segment is
//! byte-identical across inputs* (only data contents and data-carried loop
//! bounds change), so profile images from different training runs align by
//! instruction address exactly as the paper's Section 4 requires.
//!
//! ## Example
//!
//! ```
//! use vp_workloads::{Workload, WorkloadKind, InputSet};
//! use vp_sim::{run, NullTracer, RunLimits};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Workload::new(WorkloadKind::Ijpeg);
//! let program = w.program(&InputSet::train(0));
//! let summary = run(&program, &mut NullTracer, RunLimits::default())?;
//! assert!(summary.halted());
//! # Ok(())
//! # }
//! ```

pub mod input;
pub mod kind;
pub mod programs;
pub mod workload;

pub use input::InputSet;
pub use kind::WorkloadKind;
pub use workload::Workload;
