//! `hydro2d` analogue (SPEC-fp 104.hydro2d): hydrodynamical wave stepping.
//!
//! The real hydro2d advances Navier-Stokes equations with a staggered
//! two-pass difference scheme. The analogue keeps that structure: a
//! density field and a momentum field on a periodic 1024-point line,
//! advanced by a damped Lax scheme in **two separate passes per timestep**
//! (all densities first, then all momenta) — unlike `swim`'s single fused
//! sweep — with periodic wrap-around indexing (modulo address arithmetic,
//! strided but not constant-offset).

use vp_isa::{InstrAddr, Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = timesteps
const SEEDS: i64 = 16; // 1024 integer seeds
const RHO: i64 = SEEDS + 1024; // density field
const MOM: i64 = RHO + 1024; // momentum field
const CONSTS: i64 = MOM + 1024; // lambda, c2, damping (doubles)
const OUT: i64 = CONSTS + 8;

const N: i64 = 1024;

/// Builds the `hydro2d` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    generate(input).0
}

/// The static address where the computation phase begins.
#[must_use]
pub fn phase_split() -> InstrAddr {
    generate(&InputSet::train(0)).1
}

fn generate(input: &InputSet) -> (Program, InstrAddr) {
    let mut b = ProgramBuilder::named("hydro2d");

    // ---- data ----
    b.data_word(input.size_in(1, 3, 6));
    b.data_zeroed(15);
    b.data_block(util::random_words(input, 2, 1024, 1, 10_000));
    b.data_zeroed(2 * 1024);
    b.data_f64([0.2, 0.3, 0.995]); // lambda, c^2, damping
    b.data_zeroed(13);

    // ---- integer registers ----
    let steps = Reg::new(1);
    let s = Reg::new(2);
    let i = Reg::new(3);
    let east = Reg::new(4);
    let west = Reg::new(5);
    let t = Reg::new(6);
    let c1024 = Reg::new(7);
    let cursor = Reg::new(8);
    // ---- FP registers ----
    let fv = Reg::new(1);
    let fnorm = Reg::new(2);
    let lam = Reg::new(3);
    let c2 = Reg::new(4);
    let damp = Reg::new(5);
    let fe = Reg::new(6);
    let fw = Reg::new(7);
    let t1 = Reg::new(8);
    let t2 = Reg::new(9);

    // ---- init phase ----
    b.ld(steps, Reg::ZERO, PARAMS);
    b.li(c1024, N);
    b.li(t, 10_000);
    b.unary(Opcode::CvtIf, fnorm, t);
    b.li(cursor, 0);
    let init_top = util::count_loop_begin(&mut b, i);
    {
        b.ld(t, i, SEEDS);
        b.unary(Opcode::CvtIf, fv, t);
        b.alu_rr(Opcode::Fdiv, fv, fv, fnorm);
        b.fsd(fv, i, RHO);
        b.alu_ri(Opcode::Xori, t, t, 0x3ff);
        b.unary(Opcode::CvtIf, fv, t);
        b.alu_rr(Opcode::Fdiv, fv, fv, fnorm);
        b.fsd(fv, i, MOM);
    }
    util::count_loop_end(&mut b, i, c1024, init_top);

    // ---- computation phase: two passes per timestep ----
    let split = b.here();
    let step_top = util::count_loop_begin(&mut b, s);
    {
        // Pass 1: density. rho[i] <- damp*(avg(rho) - lam*(m[e] - m[w]))
        let rho_top = util::count_loop_begin(&mut b, i);
        {
            for step in 0..4 {
                b.alu_ri(Opcode::Addi, cursor, cursor, 1 + step);
            }
            b.sd(cursor, Reg::ZERO, OUT + 1);
            // Periodic neighbours: east = (i+1) mod N, west = (i-1) mod N.
            b.alu_ri(Opcode::Addi, east, i, 1);
            b.alu_ri(Opcode::Andi, east, east, N - 1);
            b.alu_ri(Opcode::Addi, west, i, -1);
            b.alu_ri(Opcode::Andi, west, west, N - 1);
            b.fld(lam, Reg::ZERO, CONSTS);
            b.fld(damp, Reg::ZERO, CONSTS + 2);
            b.fld(fe, east, RHO);
            b.fld(fw, west, RHO);
            b.alu_rr(Opcode::Fadd, t1, fe, fw);
            b.fld(fe, east, MOM);
            b.fld(fw, west, MOM);
            b.alu_rr(Opcode::Fsub, t2, fe, fw);
            b.alu_rr(Opcode::Fmul, t2, t2, lam);
            b.alu_rr(Opcode::Fsub, t1, t1, t2);
            b.alu_rr(Opcode::Fmul, t1, t1, damp);
            // Halve the average term: t1 currently holds 2*avg - ...; the
            // damping constant absorbs scale, but keep the field bounded by
            // an explicit 0.5 factor.
            b.fld(t2, Reg::ZERO, CONSTS + 1); // reuse c2 slot as 0.3 scale
            b.alu_rr(Opcode::Fmul, t1, t1, t2);
            b.fsd(t1, i, RHO);
        }
        util::count_loop_end(&mut b, i, c1024, rho_top);

        // Pass 2: momentum. m[i] <- damp*(avg(m) - c2*(rho[e] - rho[w]))
        let mom_top = util::count_loop_begin(&mut b, i);
        {
            b.alu_ri(Opcode::Addi, east, i, 1);
            b.alu_ri(Opcode::Andi, east, east, N - 1);
            b.alu_ri(Opcode::Addi, west, i, -1);
            b.alu_ri(Opcode::Andi, west, west, N - 1);
            b.fld(c2, Reg::ZERO, CONSTS + 1);
            b.fld(damp, Reg::ZERO, CONSTS + 2);
            b.fld(fe, east, MOM);
            b.fld(fw, west, MOM);
            b.alu_rr(Opcode::Fadd, t1, fe, fw);
            b.fld(fe, east, RHO);
            b.fld(fw, west, RHO);
            b.alu_rr(Opcode::Fsub, t2, fe, fw);
            b.alu_rr(Opcode::Fmul, t2, t2, c2);
            b.alu_rr(Opcode::Fsub, t1, t1, t2);
            b.alu_rr(Opcode::Fmul, t1, t1, damp);
            b.alu_rr(Opcode::Fmul, t1, t1, c2);
            b.fsd(t1, i, MOM);
        }
        util::count_loop_end(&mut b, i, c1024, mom_top);
    }
    util::count_loop_end(&mut b, s, steps, step_top);
    b.sd(cursor, Reg::ZERO, OUT);
    b.halt();

    (
        b.build()
            .expect("hydro2d generator emits a well-formed program"),
        split,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn fields_stay_finite_and_bounded() {
        let p = build(&InputSet::train(0));
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        for base in [RHO, MOM] {
            for k in [0u64, 100, 1023] {
                let v = f64::from_bits(m.memory_mut().read(base as u64 + k));
                // Each update scales by <= 0.3 * 0.995 * (2 + lambda-ish),
                // keeping the fields well inside +-2.
                assert!(v.is_finite() && v.abs() < 2.0, "field@{base}+{k} = {v}");
            }
        }
    }

    #[test]
    fn cursor_counts_density_updates() {
        let p = build(&InputSet::train(1));
        let steps = p.data()[0];
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        // 4 chained increments of +1..+4 = +10 per density-pass point.
        assert_eq!(m.memory_mut().read(OUT as u64), steps * 1024 * 10);
    }

    #[test]
    fn phase_split_is_inside_the_text() {
        let split = phase_split();
        let p = build(&InputSet::train(0));
        assert!(split.index() > 10 && (split.index() as usize) < p.len());
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
