//! `li` analogue: a cons-cell list interpreter.
//!
//! A work queue of (builtin, list) pairs drives 32 distinct builtin
//! handlers, each walking a cons-cell list on a shuffled heap. Pointer
//! chasing through shuffled cells gives the data-dependent loads their poor
//! predictability, while car values are skewed small constants (Lisp
//! programs traffic heavily in the same few atoms), giving the last-value
//! flavour the paper attributes to pointer-style codes. The 32 handlers
//! give li its large static working set.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = work items
const HEAP: i64 = 16; // 4096 words = 2048 cells (cell 0 is nil)
const LHEADS: i64 = HEAP + 4096; // 32 list heads
const WORK: i64 = LHEADS + 32; // 1024 work items
const RESULTS: i64 = WORK + 1024; // 32 per-list results

const LISTS: usize = 24;
const BUILTINS: usize = 32;

/// Builds the `li` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("li");

    // ---- data: build the shuffled cons heap host-side ----
    let mut heap = vec![0u64; 4096];
    let mut heads = vec![0u64; 32];
    {
        let mut rng = input.rng(2);
        // Two allocation arenas, as in a real Lisp heap: freshly consed
        // lists are laid out sequentially (their cdr chains stride
        // perfectly), while lists that survived garbage collection sit in
        // a fragmented region (their cdr chains are unpredictable
        // pointer chases). Two thirds of the lists are freshly consed,
        // one third survived collection.
        let mut fresh: Vec<u64> = (1..1300).rev().collect();
        let mut fragged: Vec<u64> = (1300..2048).collect();
        rng.shuffle(&mut fragged);
        for (li, head) in heads.iter_mut().enumerate().take(LISTS) {
            let len = rng.gen_range(20..80);
            let arena = if li % 3 != 2 {
                &mut fresh
            } else {
                &mut fragged
            };
            let mut prev = 0u64; // nil
            for _ in 0..len {
                let cell = arena.pop().expect("heap capacity");
                let car = {
                    // Skewed small atoms.
                    let a = rng.gen_range(0..64u64);
                    let c = rng.gen_range(0..64u64);
                    a.min(c)
                };
                heap[(2 * cell) as usize] = car;
                heap[(2 * cell + 1) as usize] = prev;
                prev = 2 * cell; // pointers are word offsets into HEAP
            }
            *head = prev;
        }
    }
    b.data_word(input.size_in(1, 600, 1_000));
    b.data_word(LISTS as u64); // reloaded per work item
    b.data_zeroed(14);
    b.data_block(heap);
    b.data_block(heads);
    b.data_block(util::random_words(
        input,
        3,
        1024,
        0,
        (BUILTINS * LISTS) as u64,
    ));
    b.data_zeroed(32);

    // ---- registers ----
    let n = Reg::new(1);
    let i = Reg::new(2);
    let w = Reg::new(3);
    let op = Reg::new(4);
    let listid = Reg::new(5);
    let ptr = Reg::new(6);
    let v = Reg::new(7);
    let acc = Reg::new(8);
    let t = Reg::new(9);
    let cl = Reg::new(10);

    // ---- text ----
    b.ld(n, Reg::ZERO, PARAMS);
    b.li(cl, LISTS as i64);
    let top = util::count_loop_begin(&mut b, i);

    b.ld(w, i, WORK);
    // The list-table size is interpreter state reloaded per work item.
    b.ld(cl, Reg::ZERO, PARAMS + 1);
    b.alu_rr(Opcode::Rem, listid, w, cl);
    b.alu_rr(Opcode::Div, op, w, cl); // op in 0..BUILTINS
    let arms: Vec<_> = (0..BUILTINS).map(|_| b.new_label()).collect();
    let next = b.new_label();
    util::dispatch_ladder(&mut b, op, t, &arms);
    b.jal(Reg::ZERO, next); // unreachable

    for (k, &arm) in arms.iter().enumerate() {
        b.bind(arm);
        b.ld(ptr, listid, LHEADS);
        b.li(acc, k as i64);
        let walk = b.new_label();
        let done = b.new_label();
        b.bind(walk);
        // Three unrolled walk steps per iteration.
        for _ in 0..3 {
            b.br(Opcode::Beq, ptr, Reg::ZERO, done);
            b.ld(v, ptr, HEAP); // car
            match k % 4 {
                0 => {
                    b.alu_ri(Opcode::Addi, v, v, (k + 1) as i64);
                    b.alu_rr(Opcode::Add, acc, acc, v);
                }
                1 => {
                    b.alu_rr(Opcode::Xor, acc, acc, v);
                    b.alu_ri(Opcode::Addi, acc, acc, 1);
                }
                2 => {
                    // max(acc, v)
                    b.alu_rr(Opcode::Slt, t, acc, v);
                    b.alu_rr(Opcode::Mul, t, t, v);
                    b.alu_rr(Opcode::Add, acc, acc, t);
                }
                _ => {
                    b.alu_ri(Opcode::Muli, v, v, 3);
                    b.alu_rr(Opcode::Add, acc, acc, v);
                }
            }
            b.ld(ptr, ptr, HEAP + 1); // cdr — pointer chase
        }
        b.br(Opcode::Bne, ptr, Reg::ZERO, walk);
        b.bind(done);
        b.sd(acc, listid, RESULTS);
        b.jal(Reg::ZERO, next);
    }

    b.bind(next);
    util::count_loop_end(&mut b, i, n, top);
    b.halt();

    b.build().expect("li generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn heap_lists_are_well_formed() {
        let p = build(&InputSet::train(0));
        let data = p.data();
        for li in 0..LISTS {
            let mut ptr = data[(LHEADS as usize) + li];
            let mut steps = 0;
            while ptr != 0 {
                assert_eq!(ptr % 2, 0, "pointers are even word offsets");
                assert!(ptr < 4096);
                ptr = data[HEAP as usize + ptr as usize + 1];
                steps += 1;
                assert!(steps < 100, "cycle detected in list {li}");
            }
            assert!((20..80).contains(&steps), "list {li} has length {steps}");
        }
    }

    #[test]
    fn builtin_zero_sums_cars_plus_one() {
        // Work item 0 is builtin 0 on list 0 only if WORK[..] says so; we
        // instead verify against a host-side interpretation of the walk.
        let p = build(&InputSet::train(1));
        let data = p.data().to_vec();
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        // Re-run the last work item touching each list host-side and
        // compare RESULTS. We just check one list that was touched.
        let nwork = data[0] as usize;
        let work = &data[WORK as usize..WORK as usize + nwork];
        let last = *work.last().unwrap();
        let (op, listid) = (last / LISTS as u64, last % LISTS as u64);
        let mut acc = op as i64;
        let mut ptr = data[LHEADS as usize + listid as usize];
        while ptr != 0 {
            let v = data[HEAP as usize + ptr as usize] as i64;
            match op % 4 {
                0 => acc += v + (op as i64 + 1),
                1 => {
                    acc ^= v;
                    acc += 1;
                }
                2 => {
                    if acc < v {
                        acc += v; // matches the slt/mul/add idiom
                    }
                }
                _ => acc += 3 * v,
            }
            ptr = data[HEAP as usize + ptr as usize + 1];
        }
        assert_eq!(m.memory_mut().read(RESULTS as u64 + listid) as i64, acc);
    }

    #[test]
    fn large_static_working_set() {
        let p = build(&InputSet::train(0));
        assert!(
            p.value_producers().count() > 400,
            "{}",
            p.value_producers().count()
        );
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 80_000, "{}", s.instructions());
    }
}
