//! `ijpeg` analogue: an 8x8 blocked integer transform + quantiser with
//! bitstream bookkeeping.
//!
//! Structure mirrors a JPEG encoder's hot path: for every 8x8 sample
//! block, compute one weighted sum per row against a fixed coefficient
//! table, quantise it by a per-input divisor, store the coefficient and
//! advance the output bitstream cursor. Loop indices, address arithmetic
//! and the cursor are densely strided (ijpeg is one of the paper's
//! stride-friendly integer benchmarks); the sample loads and accumulations
//! are data-dependent.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = number of blocks
const PIX: i64 = 16; // sample buffer (250 blocks x 64)
const COEF: i64 = PIX + 16_000; // 64 fixed coefficients
const QTAB: i64 = COEF + 64; // 8 per-input quantisation divisors
const OUT: i64 = QTAB + 8; // output coefficients (250 x 8)
const CURSOR: i64 = OUT + 2_000; // bitstream cursor cell

const MAX_BLOCKS: usize = 250;

/// Builds the `ijpeg` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("ijpeg");

    // ---- data segment (fixed layout, per-input contents) ----
    let nblocks = input.size_in(1, 150, MAX_BLOCKS as u64);
    b.data_word(nblocks); // params[0]
    b.data_word(8); // row length, reloaded in the inner loop
    b.data_zeroed(14);
    debug_assert_eq!(b.data_len() as i64, PIX);
    b.data_block(util::random_words(input, 2, MAX_BLOCKS * 64, 0, 256));
    debug_assert_eq!(b.data_len() as i64, COEF);
    // Fixed integer "cosine" coefficients: identical across inputs.
    b.data_block((0..64u64).map(|k| (k * k * 7 + 13 * k + 3) % 31 + 1));
    debug_assert_eq!(b.data_len() as i64, QTAB);
    b.data_block(util::random_words(input, 3, 8, 4, 24));
    b.data_zeroed(MAX_BLOCKS * 8 + 8);

    // ---- registers ----
    let nb = Reg::new(1);
    let blk = Reg::new(2);
    let base = Reg::new(3);
    let k = Reg::new(4);
    let j = Reg::new(5);
    let acc = Reg::new(6);
    let t = Reg::new(7);
    let t2 = Reg::new(8);
    let px = Reg::new(9);
    let cf = Reg::new(10);
    let q = Reg::new(11);
    let o = Reg::new(12);
    let c8 = Reg::new(13);
    let cursor = Reg::new(14);
    let tmp = Reg::new(15);
    let rowbase = Reg::new(16);

    // ---- text ----
    b.ld(nb, Reg::ZERO, PARAMS);
    b.li(c8, 8);
    b.li(cursor, 0);
    let blk_top = util::count_loop_begin(&mut b, blk);
    {
        b.alu_ri(Opcode::Muli, base, blk, 64);
        let row_top = util::count_loop_begin(&mut b, k);
        {
            // rowbase = base + 8k: start of row k of this block.
            b.alu_ri(Opcode::Slli, rowbase, k, 3);
            b.alu_rr(Opcode::Add, rowbase, rowbase, base);
            b.li(acc, 0);
            let in_top = util::count_loop_begin(&mut b, j);
            {
                b.alu_rr(Opcode::Add, t, rowbase, j);
                b.ld(px, t, PIX);
                b.alu_ri(Opcode::Slli, t2, k, 3);
                b.alu_rr(Opcode::Add, t2, t2, j);
                b.ld(cf, t2, COEF);
                b.alu_rr(Opcode::Mul, t, px, cf);
                b.alu_rr(Opcode::Add, acc, acc, t);
                // Row-length spill reload: constant, perfect value reuse.
                b.ld(c8, Reg::ZERO, PARAMS + 1);
            }
            util::count_loop_end(&mut b, j, c8, in_top);
            // Quantise and emit the row coefficient.
            b.ld(q, k, QTAB);
            b.alu_rr(Opcode::Div, o, acc, q);
            b.alu_ri(Opcode::Slli, t, blk, 3);
            b.alu_rr(Opcode::Add, t, t, k);
            b.sd(o, t, OUT);
            // Bitstream bookkeeping: advance the output cursor (zigzag
            // position, run-length state, Huffman bit-buffer accounting for
            // the row's eight coefficients). Serial and stride-friendly.
            util::predictable_chain(&mut b, cursor, tmp, 8);
            b.sd(cursor, Reg::ZERO, CURSOR);
        }
        util::count_loop_end(&mut b, k, c8, row_top);
    }
    util::count_loop_end(&mut b, blk, nb, blk_top);
    b.halt();

    b.build()
        .expect("ijpeg generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    fn expected_row(data: &[u64], blk: u64, k: u64) -> u64 {
        let acc: u64 = (0..8u64)
            .map(|j| {
                data[(PIX as u64 + blk * 64 + k * 8 + j) as usize]
                    * data[(COEF as u64 + k * 8 + j) as usize]
            })
            .sum();
        acc / data[(QTAB as u64 + k) as usize]
    }

    #[test]
    fn computes_quantised_row_sums() {
        let input = InputSet::train(0);
        let p = build(&input);
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let data = p.data();
        for (blk, k) in [(0u64, 0u64), (0, 5), (3, 7), (100, 2)] {
            assert_eq!(
                m.memory_mut().read(OUT as u64 + blk * 8 + k),
                expected_row(data, blk, k),
                "block {blk} row {k}"
            );
        }
    }

    #[test]
    fn block_count_follows_the_input() {
        let p = build(&InputSet::train(0));
        let n = p.data()[0];
        assert!((150..=250).contains(&n));
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        // Outputs end exactly at the last processed block.
        assert_eq!(m.memory_mut().read(OUT as u64 + n * 8), 0);
        // Cursor advanced once per row.
        let cursor = m.memory_mut().read(CURSOR as u64);
        assert_eq!(cursor % (n * 8), 0, "cursor {cursor} rows {}", n * 8);
    }

    #[test]
    fn runs_in_expected_budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 80_000, "{}", s.instructions());
    }
}
