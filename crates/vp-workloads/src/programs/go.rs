//! `go` analogue: a game-tree position evaluator.
//!
//! Evaluates a stream of candidate moves against a board, dispatching each
//! move to one of 24 distinct pattern evaluators (unrolled neighbourhood
//! scans against per-pattern weight tables). Board values and therefore
//! scores are data-dependent, giving the mixed, large-working-set
//! predictability profile of the real 099.go; the shared loop/index
//! machinery stays highly stride-predictable.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};
use vp_rng::Rng;

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = moves, [1] = passes
const BOARD: i64 = 16; // 512-cell board
const MOVES: i64 = BOARD + 512; // 512 candidate positions
const WEIGHTS: i64 = MOVES + 512; // 24 x 16 pattern weights
const SCORES: i64 = WEIGHTS + 24 * 16; // 256-slot score log

const PATTERNS: usize = 24;

/// Structure constants (pattern shapes, weights) are part of the *program*,
/// not the input, so they come from a fixed seed.
const STRUCTURE_SEED: u64 = 0x0601_9090;

/// Builds the `go` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("go");
    let mut structure = Rng::seed_from_u64(STRUCTURE_SEED);

    // ---- data ----
    b.data_word(input.size_in(1, 300, 500)); // moves per pass
    b.data_word(input.size_in(2, 5, 9)); // passes
    b.data_zeroed(6);
    b.data_word(PATTERNS as u64); // params[8]: reloaded per move
    b.data_zeroed(7);
    b.data_block(util::random_words(input, 3, 512, 0, 4)); // board stones
    b.data_block(util::random_words(input, 4, 512, 0, 512)); // candidate moves
    let weights: Vec<u64> = (0..PATTERNS * 16)
        .map(|_| structure.gen_range(1..64))
        .collect();
    b.data_block(weights);
    b.data_zeroed(256);

    // ---- registers ----
    let pass = Reg::new(1);
    let np = Reg::new(2);
    let i = Reg::new(3);
    let nm = Reg::new(4);
    let pos = Reg::new(5);
    let idx = Reg::new(6);
    let t = Reg::new(7);
    let v = Reg::new(8);
    let w = Reg::new(9);
    let wv = Reg::new(10);
    let score = Reg::new(11);
    let best = Reg::new(12);
    let bestpos = Reg::new(13);
    let t2 = Reg::new(14);
    let c24 = Reg::new(15);
    let nodes = Reg::new(16);
    let tmp = Reg::new(17);

    // ---- text ----
    b.ld(nm, Reg::ZERO, PARAMS);
    b.ld(np, Reg::ZERO, PARAMS + 1);
    b.li(c24, PATTERNS as i64);
    b.li(best, -1);
    b.li(bestpos, -1);
    b.li(nodes, 0);
    let pass_top = util::count_loop_begin(&mut b, pass);
    let move_top = util::count_loop_begin(&mut b, i);

    // Per-node search statistics (visited-node counters, history tables):
    // game engines maintain these serially on every evaluation, and they
    // advance by fixed strides.
    util::predictable_chain(&mut b, nodes, tmp, 9);
    b.sd(nodes, Reg::ZERO, PARAMS + 4);

    b.ld(pos, i, MOVES);
    // Pattern-table size: engine configuration reloaded per evaluation.
    b.ld(c24, Reg::ZERO, PARAMS + 8);
    b.alu_rr(Opcode::Rem, idx, pos, c24);
    let arms: Vec<_> = (0..PATTERNS).map(|_| b.new_label()).collect();
    let scored = b.new_label();
    util::dispatch_ladder(&mut b, idx, t, &arms);
    b.li(score, 0); // unreachable fallback (idx is always in range)
    b.jal(Reg::ZERO, scored);

    // 24 unrolled pattern evaluators with distinct shapes and weights.
    for (k, &arm) in arms.iter().enumerate() {
        b.bind(arm);
        b.li(score, structure.gen_range(0..32));
        for _ in 0..8 {
            let off: i64 = structure.gen_range(-24..=24);
            b.alu_ri(Opcode::Addi, t, pos, off);
            b.alu_ri(Opcode::Andi, t, t, 511);
            b.ld(v, t, BOARD);
            b.alu_ri(Opcode::Andi, w, v, 15);
            b.ld(wv, w, WEIGHTS + (k as i64) * 16);
            b.alu_rr(Opcode::Add, score, score, wv);
        }
        b.jal(Reg::ZERO, scored);
    }

    b.bind(scored);
    // Track the best move seen so far.
    let no_update = b.new_label();
    b.alu_rr(Opcode::Slt, t, best, score);
    b.br(Opcode::Beq, t, Reg::ZERO, no_update);
    b.mv(best, score);
    b.mv(bestpos, pos);
    b.bind(no_update);
    // Log the score (bounded circular buffer).
    b.alu_ri(Opcode::Andi, t2, i, 255);
    b.sd(score, t2, SCORES);

    util::count_loop_end(&mut b, i, nm, move_top);
    util::count_loop_end(&mut b, pass, np, pass_top);
    b.sd(best, Reg::ZERO, PARAMS + 2);
    b.sd(bestpos, Reg::ZERO, PARAMS + 3);
    b.halt();

    b.build().expect("go generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn finds_a_plausible_best_move() {
        let p = build(&InputSet::train(0));
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let best = m.memory_mut().read(2) as i64;
        let bestpos = m.memory_mut().read(3) as i64;
        // 8 neighbours x weight < 64 + seed < 32.
        assert!(best > 0 && best < 8 * 64 + 32, "best = {best}");
        assert!((0..512).contains(&bestpos), "bestpos = {bestpos}");
    }

    #[test]
    fn has_a_large_static_working_set() {
        let p = build(&InputSet::train(0));
        let producers = p.value_producers().count();
        assert!(
            producers > 600,
            "go needs table pressure, got {producers} producers"
        );
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 100_000, "{}", s.instructions());
    }
}
