//! `mgrid` analogue: a floating-point stencil relaxation.
//!
//! The single SPEC-fp stand-in, with the two execution phases the paper
//! measures separately for floating-point codes:
//!
//! - an **initialization phase** that reads per-input integer seed data and
//!   converts/normalises it into a 32x32 double-precision grid (irregular
//!   values — poor FP predictability, like the paper's init-phase columns);
//! - a **computation phase** of Gauss-Seidel-style sweeps whose coefficient
//!   reloads repeat perfectly (last-value-friendly FP loads) while grid
//!   values keep changing (hard to predict) and index arithmetic strides.
//!
//! [`phase_split`] exposes the static address separating the phases for
//! `vp-profile`'s split collector.

use vp_isa::{InstrAddr, Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = sweeps
const SEEDS: i64 = 16; // 1024 integer seeds
const GRID: i64 = SEEDS + 1024; // 32x32 doubles
const COEF: i64 = GRID + 1024; // 8 sweep coefficients (doubles)
const OUT: i64 = COEF + 8;

const N: i64 = 32;

/// Builds the `mgrid` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    generate(input).0
}

/// The static instruction address where the computation phase begins.
///
/// Instructions at lower addresses belong to the initialization phase. The
/// split is a pure property of the (input-invariant) text segment.
#[must_use]
pub fn phase_split() -> InstrAddr {
    generate(&InputSet::train(0)).1
}

fn generate(input: &InputSet) -> (Program, InstrAddr) {
    let mut b = ProgramBuilder::named("mgrid");

    // ---- data ----
    b.data_word(input.size_in(1, 6, 10));
    b.data_zeroed(15);
    b.data_block(util::random_words(input, 2, 1024, 1, 10_000));
    b.data_zeroed(1024); // grid, filled by the init phase
    b.data_f64([0.94, 0.97, 0.91, 0.99, 0.95, 0.93, 0.98, 0.96]);
    b.data_zeroed(8);

    // ---- registers (integer) ----
    let sweeps = Reg::new(1);
    let s = Reg::new(2);
    let i = Reg::new(3);
    let j = Reg::new(4);
    let idx = Reg::new(5);
    let t = Reg::new(6);
    let raw = Reg::new(7);
    let c1024 = Reg::new(8);
    let c31 = Reg::new(9);
    let cn = Reg::new(10);
    let cursor = Reg::new(11);
    // ---- registers (floating point) ----
    let fv = Reg::new(1);
    let fnorm = Reg::new(2);
    let fq = Reg::new(3);
    let fn_ = Reg::new(4);
    let fs = Reg::new(5);
    let fw = Reg::new(6);
    let fe = Reg::new(7);
    let t1 = Reg::new(8);
    let t2 = Reg::new(9);
    let coef = Reg::new(10);
    let facc = Reg::new(11);

    // ---- init phase ----
    b.ld(sweeps, Reg::ZERO, PARAMS);
    b.li(c1024, 1024);
    b.li(c31, N - 1);
    b.li(cn, N);
    b.li(t, 10_000);
    b.unary(Opcode::CvtIf, fnorm, t); // normaliser 10000.0
    b.li(t, 1);
    b.unary(Opcode::CvtIf, fq, t);
    b.li(t, 4);
    b.unary(Opcode::CvtIf, t1, t);
    b.alu_rr(Opcode::Fdiv, fq, fq, t1); // 0.25
    b.fsd(fq, Reg::ZERO, GRID); // grid[0] = 0.25
    b.li(i, 1);
    let init_top = b.bind_new_label();
    {
        b.ld(raw, i, SEEDS);
        b.unary(Opcode::CvtIf, fv, raw);
        b.alu_rr(Opcode::Fdiv, fv, fv, fnorm); // values in (0, 1]
                                               // Smooth against the previously initialised cell (reading back
                                               // freshly written, ever-changing data: the init-phase FP loads the
                                               // paper finds much less predictable than computation-phase ones).
        b.fld(fs, i, GRID - 1);
        b.alu_rr(Opcode::Fadd, fv, fv, fs);
        b.alu_rr(Opcode::Fmul, fv, fv, fq);
        b.fsd(fv, i, GRID);
    }
    b.alu_ri(Opcode::Addi, i, i, 1);
    b.br(Opcode::Blt, i, c1024, init_top);

    // ---- computation phase ----
    b.li(cursor, 0);
    let split = b.here();
    let sweep_top = util::count_loop_begin(&mut b, s);
    {
        b.li(i, 1);
        let row_top = b.bind_new_label();
        {
            b.li(j, 1);
            let col_top = b.bind_new_label();
            {
                // Linearised index bookkeeping: multi-level FORTRAN loop
                // nests carry running cursors and per-point residual-log
                // positions — serial integer chains with constant strides.
                for step in 0..7 {
                    b.alu_ri(Opcode::Addi, cursor, cursor, 1 + step);
                }
                b.sd(cursor, Reg::ZERO, OUT + 1);
                // idx = i*32 + j
                b.alu_ri(Opcode::Slli, idx, i, 5);
                b.alu_rr(Opcode::Add, idx, idx, j);
                b.fld(fn_, idx, GRID - N);
                b.fld(fs, idx, GRID + N);
                b.fld(fw, idx, GRID - 1);
                b.fld(fe, idx, GRID + 1);
                b.alu_rr(Opcode::Fadd, t1, fn_, fs);
                b.alu_rr(Opcode::Fadd, t2, fw, fe);
                b.alu_rr(Opcode::Fadd, t1, t1, t2);
                b.alu_rr(Opcode::Fmul, t1, t1, fq);
                // Per-sweep damping coefficient: reloaded every cell, so
                // this FP load repeats its value throughout a sweep — the
                // computation-phase FP-load locality of Table 2.1. The
                // pre-scaled product repeats too (FP-ALU value locality).
                b.alu_ri(Opcode::Andi, t, s, 7);
                b.fld(coef, t, COEF);
                b.alu_rr(Opcode::Fmul, coef, coef, fq);
                b.alu_rr(Opcode::Fmul, t1, t1, coef);
                b.fsd(t1, idx, GRID);
                b.alu_rr(Opcode::Fadd, facc, facc, t1);
            }
            b.alu_ri(Opcode::Addi, j, j, 1);
            b.br(Opcode::Blt, j, c31, col_top);
        }
        b.alu_ri(Opcode::Addi, i, i, 1);
        b.br(Opcode::Blt, i, c31, row_top);
    }
    util::count_loop_end(&mut b, s, sweeps, sweep_top);
    b.fsd(facc, Reg::ZERO, OUT);
    b.halt();

    (
        b.build()
            .expect("mgrid generator emits a well-formed program"),
        split,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    fn finish(input: &InputSet) -> (Program, Machine) {
        let p = build(input);
        let mut m = Machine::for_program(&p);
        let s = vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(s.halted());
        (p, m)
    }

    #[test]
    fn grid_is_initialised_to_unit_interval() {
        let (_, mut m) = finish(&InputSet::train(0));
        for k in [0u64, 17, 555, 1023] {
            let v = f64::from_bits(m.memory_mut().read(GRID as u64 + k));
            assert!(v > 0.0 && v <= 1.0, "grid[{k}] = {v}");
        }
    }

    #[test]
    fn relaxation_smooths_and_damps_the_interior() {
        let (_, mut m) = finish(&InputSet::train(1));
        // Interior cells hold damped neighbour averages: all finite, within
        // the unit interval scaled by the damping factors.
        for idx in [33u64, 500, 990] {
            let v = f64::from_bits(m.memory_mut().read(GRID as u64 + idx));
            assert!(
                v.is_finite() && (0.0..1.0).contains(&v),
                "grid[{idx}] = {v}"
            );
        }
        let acc = f64::from_bits(m.memory_mut().read(OUT as u64));
        assert!(acc.is_finite() && acc > 0.0);
    }

    #[test]
    fn phase_split_separates_init_from_compute() {
        let split = phase_split();
        let p = build(&InputSet::train(0));
        assert!(split.index() > 10);
        assert!((split.index() as usize) < p.len());
        // The init phase contains the seed load; the compute phase the
        // stencil loads. Spot-check by opcode mix on each side.
        let compute_has_fld = p
            .iter()
            .filter(|(a, _)| *a >= split)
            .any(|(_, ins)| ins.op == Opcode::Fld);
        assert!(compute_has_fld);
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
