//! `tomcatv` analogue (SPEC-fp 101.tomcatv): mesh-generation relaxation.
//!
//! Two 32x32 coordinate fields (`x`, `y`) relax toward a smooth mesh:
//! each sweep averages neighbours with a coupling term, then a separate
//! reduction pass folds the worst residual with `fmax` — tomcatv's
//! characteristic two-pass structure. Coordinates never repeat (poor FP
//! value locality) while the sweep constants and the address arithmetic
//! are perfectly regular.

use vp_isa::{InstrAddr, Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = sweeps
const SEEDS: i64 = 16; // 1024 integer seeds
const X: i64 = SEEDS + 1024;
const Y: i64 = X + 1024;
const CONSTS: i64 = Y + 1024; // quarter, coupling (doubles)
const OUT: i64 = CONSTS + 8;

const N: i64 = 32;

/// Builds the `tomcatv` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    generate(input).0
}

/// The static address where the computation phase begins.
#[must_use]
pub fn phase_split() -> InstrAddr {
    generate(&InputSet::train(0)).1
}

fn generate(input: &InputSet) -> (Program, InstrAddr) {
    let mut b = ProgramBuilder::named("tomcatv");

    // ---- data ----
    b.data_word(input.size_in(1, 5, 9));
    b.data_zeroed(15);
    b.data_block(util::random_words(input, 2, 1024, 1, 10_000));
    b.data_zeroed(2 * 1024);
    b.data_f64([0.25, 0.01]);
    b.data_zeroed(14);

    // ---- integer registers ----
    let sweeps = Reg::new(1);
    let s = Reg::new(2);
    let i = Reg::new(3);
    let j = Reg::new(4);
    let idx = Reg::new(5);
    let t = Reg::new(6);
    let raw = Reg::new(7);
    let c1024 = Reg::new(8);
    let c31 = Reg::new(9);
    let cursor = Reg::new(10);
    // ---- FP registers ----
    let fv = Reg::new(1);
    let fnorm = Reg::new(2);
    let quarter = Reg::new(3);
    let couple = Reg::new(4);
    let fn_ = Reg::new(5);
    let fs = Reg::new(6);
    let fw = Reg::new(7);
    let fe = Reg::new(8);
    let t1 = Reg::new(9);
    let t2 = Reg::new(10);
    let resid = Reg::new(11);
    let fy = Reg::new(12);

    // ---- init phase ----
    b.ld(sweeps, Reg::ZERO, PARAMS);
    b.li(c1024, 1024);
    b.li(c31, N - 1);
    b.li(t, 10_000);
    b.unary(Opcode::CvtIf, fnorm, t);
    b.li(cursor, 0);
    let init_top = util::count_loop_begin(&mut b, i);
    {
        b.ld(raw, i, SEEDS);
        b.unary(Opcode::CvtIf, fv, raw);
        b.alu_rr(Opcode::Fdiv, fv, fv, fnorm);
        b.fsd(fv, i, X);
        b.alu_ri(Opcode::Xori, t, raw, 0x155);
        b.unary(Opcode::CvtIf, fy, t);
        b.alu_rr(Opcode::Fdiv, fy, fy, fnorm);
        b.fsd(fy, i, Y);
    }
    util::count_loop_end(&mut b, i, c1024, init_top);

    // ---- computation phase ----
    let split = b.here();
    let sweep_top = util::count_loop_begin(&mut b, s);
    {
        // Pass 1: relax both coordinate fields.
        b.li(i, 1);
        let row_top = b.bind_new_label();
        {
            b.li(j, 1);
            let col_top = b.bind_new_label();
            {
                for step in 0..6 {
                    b.alu_ri(Opcode::Addi, cursor, cursor, 1 + step);
                }
                b.sd(cursor, Reg::ZERO, OUT + 1);
                b.alu_ri(Opcode::Slli, idx, i, 5);
                b.alu_rr(Opcode::Add, idx, idx, j);
                b.fld(quarter, Reg::ZERO, CONSTS);
                b.fld(couple, Reg::ZERO, CONSTS + 1);
                // x <- 0.25*(xN+xS+xW+xE) + couple*y
                b.fld(fn_, idx, X - N);
                b.fld(fs, idx, X + N);
                b.fld(fw, idx, X - 1);
                b.fld(fe, idx, X + 1);
                b.alu_rr(Opcode::Fadd, t1, fn_, fs);
                b.alu_rr(Opcode::Fadd, t2, fw, fe);
                b.alu_rr(Opcode::Fadd, t1, t1, t2);
                b.alu_rr(Opcode::Fmul, t1, t1, quarter);
                b.fld(fy, idx, Y);
                b.alu_rr(Opcode::Fmul, t2, fy, couple);
                b.alu_rr(Opcode::Fadd, t1, t1, t2);
                b.fsd(t1, idx, X);
                // y <- 0.25*(yN+yS+yW+yE) - couple*x
                b.fld(fn_, idx, Y - N);
                b.fld(fs, idx, Y + N);
                b.alu_rr(Opcode::Fadd, t2, fn_, fs);
                b.alu_rr(Opcode::Fmul, t2, t2, quarter);
                b.alu_rr(Opcode::Fmul, fv, t1, couple);
                b.alu_rr(Opcode::Fsub, t2, t2, fv);
                b.fsd(t2, idx, Y);
            }
            b.alu_ri(Opcode::Addi, j, j, 1);
            b.br(Opcode::Blt, j, c31, col_top);
        }
        b.alu_ri(Opcode::Addi, i, i, 1);
        b.br(Opcode::Blt, i, c31, row_top);

        // Pass 2: residual reduction over the whole grid (tomcatv's
        // convergence check): resid = max(resid, |x| via fmax chain).
        b.li(t, 0);
        b.unary(Opcode::CvtIf, resid, t);
        let red_top = util::count_loop_begin(&mut b, i);
        {
            b.fld(fv, i, X);
            b.alu_rr(Opcode::Fmax, resid, resid, fv);
        }
        util::count_loop_end(&mut b, i, c1024, red_top);
        b.fsd(resid, Reg::ZERO, OUT + 2);
    }
    util::count_loop_end(&mut b, s, sweeps, sweep_top);
    b.sd(cursor, Reg::ZERO, OUT);
    b.halt();

    (
        b.build()
            .expect("tomcatv generator emits a well-formed program"),
        split,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    fn finish(input: &InputSet) -> (Program, Machine) {
        let p = build(input);
        let mut m = Machine::for_program(&p);
        let s = vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(s.halted());
        (p, m)
    }

    #[test]
    fn residual_is_the_grid_maximum() {
        let (_, mut m) = finish(&InputSet::train(0));
        let resid = f64::from_bits(m.memory_mut().read(OUT as u64 + 2));
        assert!(resid.is_finite() && resid >= 0.0);
        for k in 0..1024u64 {
            let v = f64::from_bits(m.memory_mut().read(X as u64 + k));
            assert!(v <= resid + 1e-12, "x[{k}] = {v} exceeds residual {resid}");
        }
    }

    #[test]
    fn mesh_coordinates_stay_finite() {
        let (_, mut m) = finish(&InputSet::train(1));
        for base in [X, Y] {
            for k in [40u64, 500, 1000] {
                let v = f64::from_bits(m.memory_mut().read(base as u64 + k));
                assert!(v.is_finite(), "coord@{base}+{k} = {v}");
            }
        }
    }

    #[test]
    fn phase_split_is_inside_the_text() {
        let split = phase_split();
        let p = build(&InputSet::train(0));
        assert!(split.index() > 10 && (split.index() as usize) < p.len());
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
