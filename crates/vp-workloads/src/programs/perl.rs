//! `perl` analogue: a string-hashing script interpreter.
//!
//! A script of opcodes dispatches to 36 distinct string builtins, each of
//! which scans a string from a shared pool (two characters per unrolled
//! step), folds a 31x+c hash, and updates a hash-table bucket. The hash
//! chains are data-dependent; loop indices, string base computations and
//! bucket bookkeeping are predictable — perl's middle-of-the-road profile
//! in the paper, with a biggish static working set.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = script length
const STRS: i64 = 16; // 16 strings x 32 chars
const SCRIPT: i64 = STRS + 512; // 1024 script ops
const HTAB: i64 = SCRIPT + 1024; // 512 hash buckets
const OUT: i64 = HTAB + 512;

const HANDLERS: usize = 36;
const STR_LEN: i64 = 32;

/// Builds the `perl` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("perl");

    // ---- data ----
    b.data_word(input.size_in(1, 400, 700));
    b.data_word(HANDLERS as u64); // reloaded per op
    b.data_word(STR_LEN as u64); // reloaded per scan step
    b.data_zeroed(13);
    // String pool: like real text, one character class dominates (~70%
    // of characters are lowercase letters in the same band), the rest are
    // spread across the printable range.
    {
        let mut rng = input.rng(2);
        let chars: Vec<u64> = (0..512)
            .map(|_| {
                if rng.gen_bool(0.78) {
                    101
                } else {
                    rng.gen_range(32..128)
                }
            })
            .collect();
        b.data_block(chars);
    }
    // Script ops encode (handler, string) as `handler + 36 * string`.
    // Handlers are uniform; string selection is skewed — scripts hash the
    // same few keys over and over, so rehashing repeats whole value chains.
    let handlers = util::random_words(input, 3, 1024, 0, HANDLERS as u64);
    let sids = util::skewed_words(input, 4, 1024, 16);
    b.data_block(
        handlers
            .iter()
            .zip(&sids)
            .map(|(&h, &s)| h + HANDLERS as u64 * s),
    );
    b.data_zeroed(512 + 8);

    // ---- registers ----
    let n = Reg::new(1);
    let i = Reg::new(2);
    let opw = Reg::new(3);
    let hnd = Reg::new(4);
    let sid = Reg::new(5);
    let sbase = Reg::new(6);
    let j = Reg::new(7);
    let ch = Reg::new(8);
    let acc = Reg::new(9);
    let t = Reg::new(10);
    let hidx = Reg::new(11);
    let hv = Reg::new(12);
    let ch36 = Reg::new(13);
    let c32 = Reg::new(14);

    // ---- text ----
    b.ld(n, Reg::ZERO, PARAMS);
    b.li(ch36, HANDLERS as i64);
    b.li(c32, STR_LEN);
    let top = util::count_loop_begin(&mut b, i);

    b.ld(opw, i, SCRIPT);
    // Interpreter globals (op-table size, string length) live in memory
    // and are reloaded on every dispatch: perfect last-value locality.
    b.ld(ch36, Reg::ZERO, PARAMS + 1);
    b.ld(c32, Reg::ZERO, PARAMS + 2);
    b.alu_rr(Opcode::Rem, hnd, opw, ch36);
    b.alu_rr(Opcode::Div, sid, opw, ch36);
    b.alu_ri(Opcode::Slli, sbase, sid, 5); // sid * 32
    let arms: Vec<_> = (0..HANDLERS).map(|_| b.new_label()).collect();
    let next = b.new_label();
    util::dispatch_ladder(&mut b, hnd, t, &arms);
    b.jal(Reg::ZERO, next); // unreachable

    for (k, &arm) in arms.iter().enumerate() {
        b.bind(arm);
        // Each builtin scans its string accumulating a character-class
        // weight (tr///-style counting). Skewed text makes the running
        // total advance by the same small step *most* of the time — a
        // semi-predictable serial chain, perl's middle-ground profile.
        b.li(acc, (7 * k + 1) as i64);
        let scan = util::count_loop_begin(&mut b, j);
        // Two characters per unrolled iteration.
        for u in 0..2 {
            b.alu_rr(Opcode::Add, t, sbase, j);
            b.ld(ch, t, STRS + u);
            b.alu_ri(Opcode::Srli, t, ch, 5);
            b.alu_rr(Opcode::Add, acc, acc, t);
        }
        b.alu_ri(Opcode::Addi, j, j, 2);
        b.br(Opcode::Blt, j, c32, scan);
        // Bucket update keyed by (count, builtin).
        b.alu_ri(Opcode::Muli, hidx, acc, 37);
        b.alu_ri(Opcode::Andi, hidx, hidx, 511);
        b.ld(hv, hidx, HTAB);
        b.alu_ri(Opcode::Addi, hv, hv, 1);
        b.sd(hv, hidx, HTAB);
        b.jal(Reg::ZERO, next);
    }

    b.bind(next);
    util::count_loop_end(&mut b, i, n, top);
    b.sd(i, Reg::ZERO, OUT);
    b.halt();

    b.build()
        .expect("perl generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn bucket_counts_equal_script_length() {
        let p = build(&InputSet::train(0));
        let n = p.data()[0];
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let total: u64 = (0..512u64)
            .map(|k| m.memory_mut().read(HTAB as u64 + k))
            .sum();
        assert_eq!(total, n, "each script op lands in exactly one bucket");
    }

    #[test]
    fn count_matches_reference_for_one_op() {
        let p = build(&InputSet::train(1));
        let data = p.data().to_vec();
        // Host model of the first script op's bucket.
        let opw = data[SCRIPT as usize];
        let (k, sid) = (
            (opw % HANDLERS as u64) as usize,
            (opw / HANDLERS as u64) as usize,
        );
        let mut acc = (7 * k + 1) as u64;
        for j in 0..STR_LEN as usize {
            acc += data[STRS as usize + sid * 32 + j] >> 5;
        }
        let bucket = acc.wrapping_mul(37) & 511;
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(m.memory_mut().read(HTAB as u64 + bucket) >= 1);
    }

    #[test]
    fn working_set_is_large() {
        let p = build(&InputSet::train(0));
        assert!(
            p.value_producers().count() > 400,
            "{}",
            p.value_producers().count()
        );
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
