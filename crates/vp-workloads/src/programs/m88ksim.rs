//! `m88ksim` analogue: a guest-CPU interpreter.
//!
//! Interprets a tiny fixed guest program (a count-down loop) over per-input
//! guest memory, with the per-dispatch bookkeeping (simulated clock,
//! per-opcode statistics) a CPU simulator carries. The bookkeeping forms a
//! long *serial but perfectly stride-predictable* dependence chain — the
//! structural reason the real m88ksim shows the paper's largest ILP gain
//! from value prediction — and the static instruction working set is tiny,
//! so hardware classification suffers no table pressure here.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const GPROG: i64 = 16; // guest program: 2 words per guest instruction
const GMEM: i64 = 64; // guest data memory
const STATS: i64 = 96; // simulator statistics block

// Guest opcodes.
const G_HALT: u64 = 0;
const G_SUBC: u64 = 1; // acc -= arg
const G_BNZ: u64 = 2; // if acc != 0 { gpc = arg }
const G_LOAD: u64 = 5; // acc = gmem[arg]

/// Builds the `m88ksim` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("m88ksim");

    // ---- data ----
    b.data_zeroed(GPROG as usize);
    // Fixed guest program: acc = gmem[1]; do { acc -= 1 } while (acc != 0).
    let guest: [(u64, u64); 4] = [(G_LOAD, 1), (G_SUBC, 1), (G_BNZ, 1), (G_HALT, 0)];
    for (op, arg) in guest {
        b.data_word(op);
        b.data_word(arg);
    }
    b.data_zeroed((GMEM - b.data_len() as i64) as usize);
    // Guest memory: cell 1 holds the per-input iteration count.
    b.data_word(0);
    b.data_word(input.size_in(1, 3_000, 4_500));
    b.data_zeroed((STATS - b.data_len() as i64) as usize + 8);

    // ---- registers ----
    let gpc = Reg::new(1);
    let op = Reg::new(2);
    let arg = Reg::new(3);
    let acc = Reg::new(4);
    let clk = Reg::new(5);
    let tmp = Reg::new(6);
    let t2 = Reg::new(7);
    let cnt_sub = Reg::new(8);
    let cnt_bnz = Reg::new(9);
    let cnt_load = Reg::new(10);
    let book = Reg::new(11);

    // ---- text ----
    b.li(gpc, 0);
    b.li(clk, 0);
    b.li(book, 0);
    let loop_top = b.bind_new_label();

    // Fetch.
    b.alu_ri(Opcode::Slli, t2, gpc, 1);
    b.ld(op, t2, GPROG);
    b.ld(arg, t2, GPROG + 1);

    // Per-dispatch bookkeeping: simulated clock plus a serial statistics
    // chain. Every value here advances by a fixed amount per dispatch.
    b.alu_ri(Opcode::Addi, clk, clk, 1);
    util::predictable_chain(&mut b, book, tmp, 6);
    b.sd(book, Reg::ZERO, STATS);
    b.sd(clk, Reg::ZERO, STATS + 1);

    // Decode ladder.
    let h_halt = b.new_label();
    let h_subc = b.new_label();
    let h_bnz = b.new_label();
    let h_load = b.new_label();
    let adv = b.new_label();
    util::dispatch_ladder(&mut b, op, t2, &[h_halt, h_subc, h_bnz]);
    b.li(t2, G_LOAD as i64);
    b.br(Opcode::Beq, op, t2, h_load);
    b.jal(Reg::ZERO, adv); // unknown opcode: skip

    // Execute.
    b.bind(h_subc);
    b.alu_rr(Opcode::Sub, acc, acc, arg);
    b.alu_ri(Opcode::Addi, cnt_sub, cnt_sub, 1);
    b.jal(Reg::ZERO, adv);

    b.bind(h_bnz);
    b.alu_ri(Opcode::Addi, cnt_bnz, cnt_bnz, 1);
    b.br(Opcode::Beq, acc, Reg::ZERO, adv); // fall through when acc == 0
    b.mv(gpc, arg);
    b.jal(Reg::ZERO, loop_top);

    b.bind(h_load);
    b.ld(acc, arg, GMEM);
    b.alu_ri(Opcode::Addi, cnt_load, cnt_load, 1);
    b.jal(Reg::ZERO, adv);

    b.bind(adv);
    b.alu_ri(Opcode::Addi, gpc, gpc, 1);
    b.jal(Reg::ZERO, loop_top);

    b.bind(h_halt);
    b.sd(cnt_sub, Reg::ZERO, STATS + 2);
    b.sd(cnt_bnz, Reg::ZERO, STATS + 3);
    b.sd(cnt_load, Reg::ZERO, STATS + 4);
    b.halt();

    b.build()
        .expect("m88ksim generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    fn finish(input: &InputSet) -> (Program, Machine) {
        let p = build(input);
        let mut m = Machine::for_program(&p);
        let s = vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(s.halted(), "guest interpreter must reach HALTG");
        (p, m)
    }

    #[test]
    fn guest_loop_executes_n_iterations() {
        let input = InputSet::train(0);
        let (p, mut m) = finish(&input);
        let n = p.data()[GMEM as usize + 1];
        // One SUBC and one BNZ per guest iteration, one LOAD at startup.
        assert_eq!(m.memory_mut().read(STATS as u64 + 2), n);
        assert_eq!(m.memory_mut().read(STATS as u64 + 3), n);
        assert_eq!(m.memory_mut().read(STATS as u64 + 4), 1);
    }

    #[test]
    fn simulated_clock_counts_dispatches() {
        let (p, mut m) = finish(&InputSet::train(1));
        let n = p.data()[GMEM as usize + 1];
        // Dispatches: 1 LOAD + n SUBC + n BNZ + 1 HALTG.
        assert_eq!(m.memory_mut().read(STATS as u64 + 1), 2 * n + 2);
    }

    #[test]
    fn host_instruction_budget_is_moderate() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(
            s.instructions() > 100_000 && s.instructions() < 400_000,
            "{}",
            s.instructions()
        );
    }

    #[test]
    fn static_working_set_is_small() {
        let p = build(&InputSet::train(0));
        assert!(
            p.len() < 64,
            "m88ksim must stay a small hot loop ({})",
            p.len()
        );
    }
}
