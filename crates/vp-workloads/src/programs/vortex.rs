//! `vortex` analogue: an object-oriented record-store running transactions.
//!
//! A transaction stream dispatches to 28 distinct class handlers that
//! locate a record by hashed key and read-modify-write its fields. Every
//! transaction also advances the store's write-ahead-log bookkeeping — a
//! long, serial, perfectly strided dependence chain (log sequence numbers,
//! commit counters). That chain is why the real vortex shows one of the
//! paper's largest ILP gains from value prediction, while its many
//! handlers give the large static working set that profits from
//! profile-guided table admission.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};
use vp_rng::Rng;

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = transactions
const RECS: i64 = 16; // 256 records x 8 fields
const TXNS: i64 = RECS + 2048; // 2048 transaction words
const LOG: i64 = TXNS + 2048; // log bookkeeping block
const CLSCNT: i64 = LOG + 16; // 32 per-class commit counters

const HANDLERS: usize = 28;
const STRUCTURE_SEED: u64 = 0x0147_0000;

/// Builds the `vortex` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("vortex");
    let mut structure = Rng::seed_from_u64(STRUCTURE_SEED);

    // ---- data ----
    b.data_word(input.size_in(1, 1_200, 2_000));
    b.data_word(HANDLERS as u64); // reloaded per transaction
    b.data_zeroed(14);
    b.data_block(util::random_words(input, 2, 2048, 0, 1_000)); // initial fields
    b.data_block(util::random_words(input, 3, 2048, 0, 1 << 20)); // transactions
    b.data_zeroed(16 + 32 + 8);

    // ---- registers ----
    let n = Reg::new(1);
    let i = Reg::new(2);
    let txn = Reg::new(3);
    let cls = Reg::new(4);
    let key = Reg::new(5);
    let rec = Reg::new(6);
    let f = Reg::new(7);
    let t = Reg::new(8);
    let lsn = Reg::new(9);
    let tmp = Reg::new(10);
    let commit = Reg::new(11);
    let c28 = Reg::new(12);
    let t2 = Reg::new(13);

    // ---- text ----
    b.ld(n, Reg::ZERO, PARAMS);
    b.li(c28, HANDLERS as i64);
    b.li(lsn, 0);
    b.li(commit, 0);
    let top = util::count_loop_begin(&mut b, i);

    b.ld(txn, i, TXNS);
    // Schema metadata (class count) reloaded from the catalog per txn.
    b.ld(c28, Reg::ZERO, PARAMS + 1);
    b.alu_rr(Opcode::Rem, cls, txn, c28);
    // Hash the key into a record id (data-dependent).
    b.alu_ri(Opcode::Srli, key, txn, 5);
    b.alu_rr(Opcode::Xor, key, key, txn);
    b.alu_ri(Opcode::Andi, rec, key, 255);
    b.alu_ri(Opcode::Slli, rec, rec, 3); // record base = rec * 8

    // Write-ahead-log bookkeeping: a serial, stride-predictable chain that
    // every transaction extends (LSN, checksum cursor, commit stamp).
    b.alu_ri(Opcode::Addi, lsn, lsn, 4);
    util::predictable_chain(&mut b, lsn, tmp, 10);
    b.sd(lsn, Reg::ZERO, LOG);
    b.alu_ri(Opcode::Addi, commit, commit, 1);
    b.sd(commit, Reg::ZERO, LOG + 1);

    let arms: Vec<_> = (0..HANDLERS).map(|_| b.new_label()).collect();
    let next = b.new_label();
    util::dispatch_ladder(&mut b, cls, t, &arms);
    b.jal(Reg::ZERO, next); // unreachable

    for &arm in &arms {
        b.bind(arm);
        // Each class touches 3 distinct fields with its own deltas.
        for _ in 0..3 {
            let field: i64 = structure.gen_range(0..8);
            let delta: i64 = structure.gen_range(1..9);
            b.alu_ri(Opcode::Addi, t2, rec, field);
            b.ld(f, t2, RECS);
            b.alu_ri(Opcode::Addi, f, f, delta);
            b.sd(f, t2, RECS);
        }
        // Per-class commit counter (strided in memory).
        let cnt_slot = CLSCNT + structure.gen_range(0..32i64);
        b.ld(t2, Reg::ZERO, cnt_slot);
        b.alu_ri(Opcode::Addi, t2, t2, 1);
        b.sd(t2, Reg::ZERO, cnt_slot);
        b.jal(Reg::ZERO, next);
    }

    b.bind(next);
    util::count_loop_end(&mut b, i, n, top);
    b.halt();

    b.build()
        .expect("vortex generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn commit_counter_equals_transactions() {
        let p = build(&InputSet::train(0));
        let n = p.data()[0];
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert_eq!(m.memory_mut().read(LOG as u64 + 1), n);
        // LSN advances by a fixed stride per transaction.
        let lsn = m.memory_mut().read(LOG as u64);
        assert_eq!(lsn % n, 0, "lsn {lsn} must be a multiple of the txn count");
    }

    #[test]
    fn field_updates_stay_within_records() {
        let p = build(&InputSet::train(1));
        let before: u64 = p.data()[RECS as usize..RECS as usize + 2048].iter().sum();
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let after: u64 = (0..2048u64)
            .map(|k| m.memory_mut().read(RECS as u64 + k))
            .sum();
        assert!(after > before, "transactions must mutate record fields");
    }

    #[test]
    fn working_set_is_large() {
        let p = build(&InputSet::train(0));
        assert!(
            p.value_producers().count() > 350,
            "{}",
            p.value_producers().count()
        );
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 80_000, "{}", s.instructions());
    }
}
