//! `swim` analogue (SPEC-fp 102.swim): shallow-water equation stepping.
//!
//! Three 32x32 double-precision fields (velocities `u`, `v` and pressure
//! `p`) advance through finite-difference timesteps. Like the real swim:
//! dense strided address arithmetic, per-timestep constants with perfect
//! value locality, and field values that never repeat. An init phase
//! converts per-input seed data into the starting fields, matching the
//! paper's init/computation split for FP codes.

use vp_isa::{InstrAddr, Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = timesteps
const SEEDS: i64 = 16; // 1024 integer seeds
const U: i64 = SEEDS + 1024;
const V: i64 = U + 1024;
const P: i64 = V + 1024;
const CONSTS: i64 = P + 1024; // c1, c2, c3 (doubles)
const OUT: i64 = CONSTS + 8;

const N: i64 = 32;

/// Builds the `swim` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    generate(input).0
}

/// The static address where the computation phase begins.
#[must_use]
pub fn phase_split() -> InstrAddr {
    generate(&InputSet::train(0)).1
}

fn generate(input: &InputSet) -> (Program, InstrAddr) {
    let mut b = ProgramBuilder::named("swim");

    // ---- data ----
    b.data_word(input.size_in(1, 4, 7));
    b.data_zeroed(15);
    b.data_block(util::random_words(input, 2, 1024, 1, 10_000));
    b.data_zeroed(3 * 1024);
    b.data_f64([0.12, 0.08, 0.05]);
    b.data_zeroed(13);

    // ---- integer registers ----
    let steps = Reg::new(1);
    let s = Reg::new(2);
    let i = Reg::new(3);
    let j = Reg::new(4);
    let idx = Reg::new(5);
    let t = Reg::new(6);
    let raw = Reg::new(7);
    let c1024 = Reg::new(8);
    let c31 = Reg::new(9);
    let cursor = Reg::new(10);
    // ---- FP registers ----
    let fv = Reg::new(1);
    let fnorm = Reg::new(2);
    let c1 = Reg::new(3);
    let c2 = Reg::new(4);
    let c3 = Reg::new(5);
    let pe = Reg::new(6);
    let pw = Reg::new(7);
    let fa = Reg::new(8);
    let fb = Reg::new(9);
    let fu = Reg::new(10);
    let fw = Reg::new(11);

    // ---- init phase: fields from seeds ----
    b.ld(steps, Reg::ZERO, PARAMS);
    b.li(c1024, 1024);
    b.li(c31, N - 1);
    b.li(t, 10_000);
    b.unary(Opcode::CvtIf, fnorm, t);
    b.li(cursor, 0);
    let init_top = util::count_loop_begin(&mut b, i);
    {
        b.ld(raw, i, SEEDS);
        b.unary(Opcode::CvtIf, fv, raw);
        b.alu_rr(Opcode::Fdiv, fv, fv, fnorm);
        b.fsd(fv, i, U);
        b.alu_ri(Opcode::Muli, t, raw, 3);
        b.unary(Opcode::CvtIf, fa, t);
        b.alu_rr(Opcode::Fdiv, fa, fa, fnorm);
        b.fsd(fa, i, V);
        b.alu_rr(Opcode::Fadd, fb, fv, fa);
        b.fsd(fb, i, P);
    }
    util::count_loop_end(&mut b, i, c1024, init_top);

    // ---- computation phase: timesteps ----
    let split = b.here();
    let step_top = util::count_loop_begin(&mut b, s);
    {
        b.li(i, 1);
        let row_top = b.bind_new_label();
        {
            b.li(j, 1);
            let col_top = b.bind_new_label();
            {
                // Linearised cursor bookkeeping (output trace position).
                for step in 0..5 {
                    b.alu_ri(Opcode::Addi, cursor, cursor, 1 + step);
                }
                b.sd(cursor, Reg::ZERO, OUT + 1);
                // idx = i*32 + j
                b.alu_ri(Opcode::Slli, idx, i, 5);
                b.alu_rr(Opcode::Add, idx, idx, j);
                // Per-step constants: reloaded per cell, perfect locality.
                b.fld(c1, Reg::ZERO, CONSTS);
                b.fld(c2, Reg::ZERO, CONSTS + 1);
                b.fld(c3, Reg::ZERO, CONSTS + 2);
                // u -= c1 * (p[east] - p[west])
                b.fld(pe, idx, P + 1);
                b.fld(pw, idx, P - 1);
                b.alu_rr(Opcode::Fsub, fa, pe, pw);
                b.alu_rr(Opcode::Fmul, fa, fa, c1);
                b.fld(fu, idx, U);
                b.alu_rr(Opcode::Fsub, fu, fu, fa);
                b.fsd(fu, idx, U);
                // v -= c2 * (p[south] - p[north])
                b.fld(pe, idx, P + N);
                b.fld(pw, idx, P - N);
                b.alu_rr(Opcode::Fsub, fb, pe, pw);
                b.alu_rr(Opcode::Fmul, fb, fb, c2);
                b.fld(fw, idx, V);
                b.alu_rr(Opcode::Fsub, fw, fw, fb);
                b.fsd(fw, idx, V);
                // p -= c3 * (u + v)
                b.alu_rr(Opcode::Fadd, fa, fu, fw);
                b.alu_rr(Opcode::Fmul, fa, fa, c3);
                b.fld(fv, idx, P);
                b.alu_rr(Opcode::Fsub, fv, fv, fa);
                b.fsd(fv, idx, P);
            }
            b.alu_ri(Opcode::Addi, j, j, 1);
            b.br(Opcode::Blt, j, c31, col_top);
        }
        b.alu_ri(Opcode::Addi, i, i, 1);
        b.br(Opcode::Blt, i, c31, row_top);
    }
    util::count_loop_end(&mut b, s, steps, step_top);
    b.sd(cursor, Reg::ZERO, OUT);
    b.halt();

    (
        b.build()
            .expect("swim generator emits a well-formed program"),
        split,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    fn finish(input: &InputSet) -> (Program, Machine) {
        let p = build(input);
        let mut m = Machine::for_program(&p);
        let s = vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(s.halted());
        (p, m)
    }

    #[test]
    fn fields_stay_finite_through_the_timesteps() {
        let (_, mut m) = finish(&InputSet::train(0));
        for base in [U, V, P] {
            for k in [33u64, 512, 990] {
                let v = f64::from_bits(m.memory_mut().read(base as u64 + k));
                assert!(v.is_finite(), "field@{base}+{k} = {v}");
            }
        }
    }

    #[test]
    fn pressure_changes_from_its_initial_value() {
        let (p, mut m) = finish(&InputSet::train(1));
        let seeds = p.data();
        let init_p = f64::from_bits(seeds[P as usize + 33]);
        // The init phase wrote u+v into p; timesteps must have moved it.
        let _ = init_p; // initial image stores zero (filled at runtime)
        let after = f64::from_bits(m.memory_mut().read(P as u64 + 33));
        let u = f64::from_bits(m.memory_mut().read(U as u64 + 33));
        let v = f64::from_bits(m.memory_mut().read(V as u64 + 33));
        assert_ne!(after, u + v, "p must have advanced past its initial value");
    }

    #[test]
    fn phase_split_is_inside_the_text() {
        let split = phase_split();
        let p = build(&InputSet::train(0));
        assert!(split.index() > 10 && (split.index() as usize) < p.len());
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
