//! `su2cor` analogue (SPEC-fp 103.su2cor): SU(2) lattice gauge products.
//!
//! The real su2cor computes quark propagators by multiplying SU(2) group
//! elements (representable as quaternions) along lattice paths. The
//! analogue keeps exactly that kernel: per site, a chain of quaternion
//! products over four neighbouring links, with the trace accumulated —
//! long dependent FP multiply/add chains over values that never repeat,
//! plus perfectly strided link addressing. Distinct from the stencil
//! codes: the hot loop is dense FP arithmetic on packed 4-vectors, not
//! neighbour averaging.

use vp_isa::{InstrAddr, Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = sweeps
const SEEDS: i64 = 16; // 1024 integer seeds
const LINKS: i64 = SEEDS + 1024; // 256 links x 4 doubles
const TR: i64 = LINKS + 1024; // 256 per-site traces
const OUT: i64 = TR + 256;

const SITES: i64 = 256;

/// Builds the `su2cor` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    generate(input).0
}

/// The static address where the computation phase begins.
#[must_use]
pub fn phase_split() -> InstrAddr {
    generate(&InputSet::train(0)).1
}

/// Emits a quaternion product `(qa,qb,qc,qd) <- (qa..qd) * (ra..rd)`,
/// using `t1`/`t2` as FP scratch.
#[allow(clippy::too_many_arguments)]
fn emit_qmul(
    b: &mut ProgramBuilder,
    (qa, qb, qc, qd): (Reg, Reg, Reg, Reg),
    (ra, rb, rc, rd): (Reg, Reg, Reg, Reg),
    (t1, t2, oa, ob): (Reg, Reg, Reg, Reg),
) {
    // oa = qa*ra - qb*rb - qc*rc - qd*rd
    b.alu_rr(Opcode::Fmul, oa, qa, ra);
    b.alu_rr(Opcode::Fmul, t1, qb, rb);
    b.alu_rr(Opcode::Fsub, oa, oa, t1);
    b.alu_rr(Opcode::Fmul, t1, qc, rc);
    b.alu_rr(Opcode::Fsub, oa, oa, t1);
    b.alu_rr(Opcode::Fmul, t1, qd, rd);
    b.alu_rr(Opcode::Fsub, oa, oa, t1);
    // ob = qa*rb + qb*ra + qc*rd - qd*rc
    b.alu_rr(Opcode::Fmul, ob, qa, rb);
    b.alu_rr(Opcode::Fmul, t1, qb, ra);
    b.alu_rr(Opcode::Fadd, ob, ob, t1);
    b.alu_rr(Opcode::Fmul, t1, qc, rd);
    b.alu_rr(Opcode::Fadd, ob, ob, t1);
    b.alu_rr(Opcode::Fmul, t1, qd, rc);
    b.alu_rr(Opcode::Fsub, ob, ob, t1);
    // oc (reusing t2) = qa*rc - qb*rd + qc*ra + qd*rb
    b.alu_rr(Opcode::Fmul, t2, qa, rc);
    b.alu_rr(Opcode::Fmul, t1, qb, rd);
    b.alu_rr(Opcode::Fsub, t2, t2, t1);
    b.alu_rr(Opcode::Fmul, t1, qc, ra);
    b.alu_rr(Opcode::Fadd, t2, t2, t1);
    b.alu_rr(Opcode::Fmul, t1, qd, rb);
    b.alu_rr(Opcode::Fadd, t2, t2, t1);
    // qd' = qa*rd + qb*rc - qc*rb + qd*ra  (into t1 chainwise, then qd)
    b.alu_rr(Opcode::Fmul, t1, qa, rd);
    b.alu_rr(Opcode::Fmul, qa, qb, rc); // qa free after oa/ob/t2 computed
    b.alu_rr(Opcode::Fadd, t1, t1, qa);
    b.alu_rr(Opcode::Fmul, qa, qc, rb);
    b.alu_rr(Opcode::Fsub, t1, t1, qa);
    b.alu_rr(Opcode::Fmul, qa, qd, ra);
    b.alu_rr(Opcode::Fadd, qd, t1, qa);
    // Commit the rest.
    b.unary(Opcode::Fmv, qa, oa);
    b.unary(Opcode::Fmv, qb, ob);
    b.unary(Opcode::Fmv, qc, t2);
}

fn generate(input: &InputSet) -> (Program, InstrAddr) {
    let mut b = ProgramBuilder::named("su2cor");

    // ---- data ----
    b.data_word(input.size_in(1, 4, 7));
    b.data_zeroed(15);
    b.data_block(util::random_words(input, 2, 1024, 1, 10_000));
    b.data_zeroed(1024 + 256 + 4);
    b.data_f64([0.98]); // coupling constant at OUT+4, reloaded per site
    b.data_zeroed(3);

    // ---- integer registers ----
    let sweeps = Reg::new(1);
    let s = Reg::new(2);
    let i = Reg::new(3);
    let t = Reg::new(4);
    let base = Reg::new(5);
    let n2 = Reg::new(6);
    let n3 = Reg::new(7);
    let c1024 = Reg::new(8);
    let c256 = Reg::new(9);
    let cursor = Reg::new(10);
    // ---- FP registers ----
    let (qa, qb, qc, qd) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
    let (ra, rb, rc, rd) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
    let (t1, t2, oa, ob) = (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));
    let fnorm = Reg::new(13);
    let facc = Reg::new(14);
    let couple = Reg::new(15);

    // ---- init phase: links from seeds, components in (0, 0.5] ----
    b.ld(sweeps, Reg::ZERO, PARAMS);
    b.li(c1024, 1024);
    b.li(c256, SITES);
    b.li(t, 20_000);
    b.unary(Opcode::CvtIf, fnorm, t);
    b.li(cursor, 0);
    let init_top = util::count_loop_begin(&mut b, i);
    {
        b.ld(t, i, SEEDS);
        b.unary(Opcode::CvtIf, qa, t);
        b.alu_rr(Opcode::Fdiv, qa, qa, fnorm);
        b.fsd(qa, i, LINKS);
    }
    util::count_loop_end(&mut b, i, c1024, init_top);

    // ---- computation phase: per-site path products ----
    let split = b.here();
    let sweep_top = util::count_loop_begin(&mut b, s);
    {
        let site_top = util::count_loop_begin(&mut b, i);
        {
            // Cursor bookkeeping (propagator output position).
            for step in 0..6 {
                b.alu_ri(Opcode::Addi, cursor, cursor, 1 + step);
            }
            b.sd(cursor, Reg::ZERO, OUT + 1);
            // Load link(i) into q and multiply by three path neighbours.
            b.alu_ri(Opcode::Slli, base, i, 2);
            b.fld(qa, base, LINKS);
            b.fld(qb, base, LINKS + 1);
            b.fld(qc, base, LINKS + 2);
            b.fld(qd, base, LINKS + 3);
            for (off, nreg) in [(1i64, n2), (17, n3), (33, t)] {
                b.alu_ri(Opcode::Addi, nreg, i, off);
                b.alu_ri(Opcode::Andi, nreg, nreg, SITES - 1);
                b.alu_ri(Opcode::Slli, nreg, nreg, 2);
                b.fld(ra, nreg, LINKS);
                b.fld(rb, nreg, LINKS + 1);
                b.fld(rc, nreg, LINKS + 2);
                b.fld(rd, nreg, LINKS + 3);
                emit_qmul(&mut b, (qa, qb, qc, qd), (ra, rb, rc, rd), (t1, t2, oa, ob));
            }
            // Coupling constant: reloaded every site, perfect FP-load
            // value locality (the comp-phase pattern of Table 2.1).
            b.fld(couple, Reg::ZERO, OUT + 4);
            b.alu_rr(Opcode::Fmul, qa, qa, couple);
            // Trace accumulation.
            b.fsd(qa, i, TR);
            b.alu_rr(Opcode::Fadd, facc, facc, qa);
        }
        util::count_loop_end(&mut b, i, c256, site_top);
    }
    util::count_loop_end(&mut b, s, sweeps, sweep_top);
    b.fsd(facc, Reg::ZERO, OUT);
    b.halt();

    (
        b.build()
            .expect("su2cor generator emits a well-formed program"),
        split,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    /// Host-side quaternion product for cross-checking.
    fn qmul(q: [f64; 4], r: [f64; 4]) -> [f64; 4] {
        [
            q[0] * r[0] - q[1] * r[1] - q[2] * r[2] - q[3] * r[3],
            q[0] * r[1] + q[1] * r[0] + q[2] * r[3] - q[3] * r[2],
            q[0] * r[2] - q[1] * r[3] + q[2] * r[0] + q[3] * r[1],
            q[0] * r[3] + q[1] * r[2] - q[2] * r[1] + q[3] * r[0],
        ]
    }

    #[test]
    fn first_site_trace_matches_the_host_model() {
        let input = InputSet::train(0);
        let p = build(&input);
        let data = p.data();
        // Host model of site 0's first-sweep trace.
        let link = |idx: i64| -> [f64; 4] {
            let base = (idx & (SITES - 1)) * 4;
            core::array::from_fn(|c| data[(SEEDS + base + c as i64) as usize] as f64 / 20_000.0)
        };
        let mut q = link(0);
        for off in [1i64, 17, 33] {
            q = qmul(q, link(off));
        }
        q[0] *= 0.98; // the coupling factor applied before the trace store
        let mut m = Machine::for_program(&p);
        // Run just past the first site of the first sweep by bounding the
        // budget generously and reading the final trace instead: the trace
        // of site 0 is overwritten identically every sweep (links never
        // change), so the final value equals the first-sweep value.
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let got = f64::from_bits(m.memory_mut().read(TR as u64));
        assert!((got - q[0]).abs() < 1e-12, "trace {got} vs model {}", q[0]);
    }

    #[test]
    fn traces_stay_finite_and_bounded() {
        let p = build(&InputSet::train(1));
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        for k in 0..SITES as u64 {
            let v = f64::from_bits(m.memory_mut().read(TR as u64 + k));
            // Each link has quaternion norm <= 1 (four components <= 0.5),
            // and the norm is multiplicative, so any product trace is <= 1.
            assert!(v.is_finite() && v.abs() <= 1.0 + 1e-9, "tr[{k}] = {v}");
        }
    }

    #[test]
    fn phase_split_is_inside_the_text() {
        let split = phase_split();
        let p = build(&InputSet::train(0));
        assert!(split.index() > 10 && (split.index() as usize) < p.len());
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
