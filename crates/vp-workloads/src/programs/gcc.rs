//! `gcc` analogue: a lexer / symbol-table / constant-folding pipeline.
//!
//! Streams a token array through a 48-way classification switch whose
//! handlers hash into a symbol table, fold block-specific constants and
//! maintain per-class statistics. The point of the shape is gcc's defining
//! property in the paper: a *very large* static working set of
//! value-producing instructions, far exceeding a 512-entry prediction
//! table, with predictability split between hot bookkeeping (predictable)
//! and token-dependent values (unpredictable).

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};
use vp_rng::Rng;

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = token count
const TOKS: i64 = 16; // 4096-word token stream
const SYM: i64 = TOKS + 4096; // 1024-entry symbol table
const CNT: i64 = SYM + 1024; // 64 per-class counters
const OUT: i64 = CNT + 64; // output scalars

const CLASSES: usize = 48;
const TOK_CAP: usize = 4096;
const STRUCTURE_SEED: u64 = 0x006c_c272;

/// Builds the `gcc` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("gcc");
    let mut structure = Rng::seed_from_u64(STRUCTURE_SEED);

    // ---- data ----
    b.data_word(input.size_in(1, 2_000, 3_000));
    b.data_word(CLASSES as u64); // reloaded per token
    b.data_zeroed(14);
    b.data_block(util::skewed_words(input, 2, TOK_CAP, 997));
    b.data_zeroed(1024 + 64 + 8);

    // ---- registers ----
    let n = Reg::new(1);
    let i = Reg::new(2);
    let tok = Reg::new(3);
    let cls = Reg::new(4);
    let t = Reg::new(5);
    let h = Reg::new(6);
    let e = Reg::new(7);
    let c = Reg::new(8);
    let folded = Reg::new(9);
    let t2 = Reg::new(10);
    let c48 = Reg::new(11);
    let stats = Reg::new(12);
    let tmp = Reg::new(13);

    // ---- text ----
    b.ld(n, Reg::ZERO, PARAMS);
    b.li(c48, CLASSES as i64);
    b.li(folded, 0);
    b.li(stats, 0);
    let top = util::count_loop_begin(&mut b, i);

    // Per-token pass statistics (compilers count everything): a short
    // serial chain with constant strides.
    util::predictable_chain(&mut b, stats, tmp, 4);
    b.sd(stats, Reg::ZERO, OUT + 1);

    b.ld(tok, i, TOKS);
    // The class count is a global reloaded on every token (symbol-table
    // metadata in memory): perfect last-value locality.
    b.ld(c48, Reg::ZERO, PARAMS + 1);
    b.alu_rr(Opcode::Rem, cls, tok, c48);
    let arms: Vec<_> = (0..CLASSES).map(|_| b.new_label()).collect();
    let cont = b.new_label();
    util::dispatch_ladder(&mut b, cls, t, &arms);
    b.jal(Reg::ZERO, cont); // unreachable: cls < 48 always

    for (k, &arm) in arms.iter().enumerate() {
        b.bind(arm);
        let c1: i64 = structure.gen_range(3..97);
        let c2: i64 = structure.gen_range(1..41);
        // Token-dependent symbol value (unpredictable).
        b.alu_ri(Opcode::Muli, t, tok, c1);
        b.alu_ri(Opcode::Addi, t, t, c2);
        b.alu_rr(Opcode::Xor, t, t, i);
        // Symbol-table update: read-modify-write at a token-dependent slot.
        b.alu_ri(Opcode::Andi, h, t, 1023);
        b.ld(e, h, SYM);
        b.alu_rr(Opcode::Add, e, e, t);
        b.sd(e, h, SYM);
        // Constant folding: class-specific arithmetic on the running value
        // (data-dependent chain).
        b.alu_ri(Opcode::Srai, t2, e, (k % 7 + 1) as i64);
        b.alu_rr(Opcode::Add, folded, folded, t2);
        // Per-class statistics counter in memory: perfectly strided.
        b.ld(c, Reg::ZERO, CNT + k as i64);
        b.alu_ri(Opcode::Addi, c, c, 1);
        b.sd(c, Reg::ZERO, CNT + k as i64);
        b.jal(Reg::ZERO, cont);
    }

    b.bind(cont);
    util::count_loop_end(&mut b, i, n, top);
    b.sd(folded, Reg::ZERO, OUT);
    b.halt();

    b.build()
        .expect("gcc generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn class_counters_partition_the_stream() {
        let p = build(&InputSet::train(0));
        let n = p.data()[0];
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let total: u64 = (0..CLASSES as u64)
            .map(|k| m.memory_mut().read(CNT as u64 + k))
            .sum();
        assert_eq!(total, n, "every token must be classified exactly once");
    }

    #[test]
    fn skewed_tokens_skew_the_classes() {
        let p = build(&InputSet::train(1));
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let lo: u64 = (0..8u64).map(|k| m.memory_mut().read(CNT as u64 + k)).sum();
        let hi: u64 = (40..48u64)
            .map(|k| m.memory_mut().read(CNT as u64 + k))
            .sum();
        assert!(lo > hi, "low classes should dominate ({lo} vs {hi})");
    }

    #[test]
    fn has_the_largest_static_working_set() {
        let p = build(&InputSet::train(0));
        let producers = p.value_producers().count();
        assert!(
            producers > 500,
            "gcc needs heavy table pressure, got {producers}"
        );
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 100_000, "{}", s.instructions());
    }
}
