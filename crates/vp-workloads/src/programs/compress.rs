//! `compress` analogue: an adaptive dictionary hasher.
//!
//! A Lempel-Ziv-style inner loop: stream the input text through a rolling
//! hash, probe a dictionary, and update hit counts. The rolling hash and
//! the probed values are data-dependent — the structural reason the real
//! compress is the paper's least value-predictable integer benchmark — and
//! the critical dependence chain (the hash) is *not* collapsible by value
//! prediction, so its ILP gain stays small.

use vp_isa::{Opcode, Program, ProgramBuilder, Reg};

use super::util;
use crate::InputSet;

const PARAMS: i64 = 0; // [0] = text length
const TEXT: i64 = 16; // 8192-word input text
const HKEY: i64 = TEXT + 8192; // 4096-entry dictionary keys
const HCNT: i64 = HKEY + 4096; // 4096-entry hit counters
const DONE: i64 = HCNT + 4096; // output scalars

const TEXT_CAP: usize = 8192;

/// Builds the `compress` analogue for one input set.
#[must_use]
pub fn build(input: &InputSet) -> Program {
    let mut b = ProgramBuilder::named("compress");

    // ---- data ----
    let len = input.size_in(1, 5_000, TEXT_CAP as u64);
    b.data_word(len);
    b.data_word(0xfff); // hash mask, reloaded per symbol
    b.data_zeroed(14);
    // Skewed symbol stream: realistic text has very non-uniform bytes.
    // Symbols are 1..=255 so the all-zero initial dictionary never matches.
    b.data_block(
        util::skewed_words(input, 2, TEXT_CAP, 255)
            .into_iter()
            .map(|w| w + 1),
    );
    b.data_zeroed(4096 + 4096 + 8);

    // ---- registers ----
    let n = Reg::new(1);
    let i = Reg::new(2);
    let hash = Reg::new(3);
    let c = Reg::new(4);
    let t = Reg::new(5);
    let key = Reg::new(6);
    let t2 = Reg::new(7);
    let hits = Reg::new(8);
    let misses = Reg::new(9);
    let cursor = Reg::new(10);
    let tmp = Reg::new(11);

    // ---- text ----
    b.ld(n, Reg::ZERO, PARAMS);
    b.li(hash, 0);
    b.li(hits, 0);
    b.li(misses, 0);
    b.li(cursor, 0);
    let top = util::count_loop_begin(&mut b, i);
    {
        // Output bit-cursor bookkeeping: real LZ coders advance an output
        // position every symbol. Serial but perfectly stride-predictable.
        util::predictable_chain(&mut b, cursor, tmp, 5);
        b.sd(cursor, Reg::ZERO, DONE + 2);
        b.ld(c, i, TEXT);
        // Rolling hash: hash = (((hash << 4) ^ (hash >> 7) ^ c) * 3) & 0xfff.
        b.alu_ri(Opcode::Slli, t, hash, 4);
        b.alu_ri(Opcode::Srli, t2, hash, 7);
        b.alu_rr(Opcode::Xor, t, t, t2);
        b.alu_rr(Opcode::Xor, t, t, c);
        b.alu_ri(Opcode::Muli, t, t, 3);
        // The mask and the length live in memory, reloaded every symbol —
        // the register-pressure spills real compilers emit in this loop.
        // Both loads repeat their value perfectly (last-value locality).
        b.ld(t2, Reg::ZERO, PARAMS + 1);
        b.alu_rr(Opcode::And, hash, t, t2);
        // Dictionary probe.
        b.ld(key, hash, HKEY);
        let hit = b.new_label();
        let next = b.new_label();
        b.br(Opcode::Beq, key, c, hit);
        // Miss: install the symbol, reset its count.
        b.sd(c, hash, HKEY);
        b.li(t2, 1);
        b.sd(t2, hash, HCNT);
        b.alu_ri(Opcode::Addi, misses, misses, 1);
        b.jal(Reg::ZERO, next);
        // Hit: bump the count.
        b.bind(hit);
        b.ld(t2, hash, HCNT);
        b.alu_ri(Opcode::Addi, t2, t2, 1);
        b.sd(t2, hash, HCNT);
        b.alu_ri(Opcode::Addi, hits, hits, 1);
        b.bind(next);
        b.ld(n, Reg::ZERO, PARAMS);
    }
    util::count_loop_end(&mut b, i, n, top);
    b.sd(hits, Reg::ZERO, DONE);
    b.sd(misses, Reg::ZERO, DONE + 1);
    b.halt();

    b.build()
        .expect("compress generator emits a well-formed program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, Machine, NullTracer, RunLimits};

    #[test]
    fn hits_plus_misses_cover_the_text() {
        let p = build(&InputSet::train(0));
        let n = p.data()[0];
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        let hits = m.memory_mut().read(DONE as u64);
        let misses = m.memory_mut().read(DONE as u64 + 1);
        assert_eq!(hits + misses, n);
        assert!(misses > 0, "some dictionary misses expected");
        assert!(hits > 0, "skewed text must produce dictionary hits");
    }

    #[test]
    fn rolling_hash_matches_reference_model() {
        let p = build(&InputSet::train(1));
        let data = p.data().to_vec();
        let n = data[0] as usize;
        // Host-side model of the guest loop.
        let (mut hash, mut hits, mut misses) = (0u64, 0u64, 0u64);
        let mut keys = vec![0u64; 4096];
        for idx in 0..n {
            let c = data[TEXT as usize + idx];
            hash = (((hash << 4) ^ (hash >> 7) ^ c).wrapping_mul(3)) & 0xfff;
            let h = hash as usize;
            if keys[h] == c {
                hits += 1;
            } else {
                keys[h] = c;
                misses += 1;
            }
        }
        let mut m = Machine::for_program(&p);
        vp_sim::runner::run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert_eq!(m.memory_mut().read(DONE as u64), hits);
        assert_eq!(m.memory_mut().read(DONE as u64 + 1), misses);
    }

    #[test]
    fn budget() {
        let s = run(
            &build(&InputSet::train(2)),
            &mut NullTracer,
            RunLimits::with_max(3_000_000),
        )
        .unwrap();
        assert!(s.halted());
        assert!(s.instructions() > 60_000, "{}", s.instructions());
    }
}
