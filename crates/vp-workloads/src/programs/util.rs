//! Shared code-generation idioms for the workload generators.

use vp_isa::{Label, Opcode, ProgramBuilder, Reg};

use crate::InputSet;

/// Emits the head of a counted loop `for (r = 0; r < bound; …)`; returns the
/// loop-top label. Pair with [`count_loop_end`].
pub fn count_loop_begin(b: &mut ProgramBuilder, counter: Reg) -> Label {
    b.li(counter, 0);
    b.bind_new_label()
}

/// Emits the tail of a counted loop: increment + branch back while
/// `counter < bound`.
pub fn count_loop_end(b: &mut ProgramBuilder, counter: Reg, bound: Reg, top: Label) {
    b.alu_ri(Opcode::Addi, counter, counter, 1);
    b.br(Opcode::Blt, counter, bound, top);
}

/// Generates `len` pseudo-random words in `lo..hi` from the input's RNG.
pub fn random_words(input: &InputSet, salt: u64, len: usize, lo: u64, hi: u64) -> Vec<u64> {
    let mut rng = input.rng(salt);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Generates `len` words with a *skewed* distribution over `0..alphabet`
/// (roughly Zipf-ish: low symbols much more frequent), modelling realistic
/// token/character streams.
pub fn skewed_words(input: &InputSet, salt: u64, len: usize, alphabet: u64) -> Vec<u64> {
    let mut rng = input.rng(salt);
    (0..len)
        .map(|_| {
            // min of two uniforms skews mass toward 0.
            let a = rng.gen_range(0..alphabet);
            let b = rng.gen_range(0..alphabet);
            a.min(b)
        })
        .collect()
}

/// Emits a chain of `len` *dependent* integer operations starting and
/// ending at `reg`, each with input-invariant, stride-friendly values
/// (constant increments). Models per-iteration bookkeeping (simulator
/// clocks, statistics counters) whose serial chain value prediction can
/// collapse.
///
/// Uses `scratch` as an intermediate; both registers end up holding values
/// on the chain.
pub fn predictable_chain(b: &mut ProgramBuilder, reg: Reg, scratch: Reg, len: usize) {
    for k in 0..len {
        if k % 2 == 0 {
            b.alu_ri(Opcode::Addi, scratch, reg, 3 + k as i64);
        } else {
            b.alu_ri(Opcode::Addi, reg, scratch, 1);
        }
    }
    if len % 2 == 1 {
        b.mv(reg, scratch);
    }
}

/// Emits a dispatch ladder: compares `selector` against `0..arms` and
/// branches to the matching label (the classic interpreter `switch`).
/// Falls through to the instruction after the ladder when nothing matches.
///
/// `scratch` is clobbered.
pub fn dispatch_ladder(b: &mut ProgramBuilder, selector: Reg, scratch: Reg, arms: &[Label]) {
    for (k, &arm) in arms.iter().enumerate() {
        b.li(scratch, k as i64);
        b.br(Opcode::Beq, selector, scratch, arm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::Program;
    use vp_sim::{NullTracer, RunLimits};

    fn exec(p: &Program) -> vp_sim::Machine {
        let mut m = vp_sim::Machine::for_program(p);
        let mut t = NullTracer;
        vp_sim::runner::run_on(&mut m, p, &mut t, RunLimits::default()).unwrap();
        m
    }

    #[test]
    fn count_loop_iterates_bound_times() {
        let mut b = ProgramBuilder::new();
        let (i, n, acc) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.li(n, 7);
        b.li(acc, 0);
        let top = count_loop_begin(&mut b, i);
        b.alu_ri(Opcode::Addi, acc, acc, 1);
        count_loop_end(&mut b, i, n, top);
        b.halt();
        let m = exec(&b.build().unwrap());
        assert_eq!(m.read_reg(vp_isa::RegClass::Int, Reg::new(3)), 7);
    }

    #[test]
    fn dispatch_ladder_selects_each_arm() {
        for sel in 0..3i64 {
            let mut b = ProgramBuilder::new();
            let (s, t, out) = (Reg::new(1), Reg::new(2), Reg::new(3));
            b.li(s, sel);
            let arms: Vec<Label> = (0..3).map(|_| b.new_label()).collect();
            dispatch_ladder(&mut b, s, t, &arms);
            let done = b.new_label();
            b.li(out, -1); // fallthrough marker
            b.jal(Reg::ZERO, done);
            for (k, &arm) in arms.iter().enumerate() {
                b.bind(arm);
                b.li(out, 100 + k as i64);
                b.jal(Reg::ZERO, done);
            }
            b.bind(done);
            b.halt();
            let m = exec(&b.build().unwrap());
            assert_eq!(m.read_reg(vp_isa::RegClass::Int, out) as i64, 100 + sel);
        }
    }

    #[test]
    fn predictable_chain_is_deterministic_and_dependent() {
        let mut b = ProgramBuilder::new();
        let (r, s) = (Reg::new(1), Reg::new(2));
        b.li(r, 10);
        predictable_chain(&mut b, r, s, 5);
        b.halt();
        let m = exec(&b.build().unwrap());
        // Chain: s=r+3, r=s+1, s=r+5, r=s+1, s=r+7 then mv r,s.
        assert_eq!(m.read_reg(vp_isa::RegClass::Int, r), 10 + 3 + 1 + 5 + 1 + 7);
    }

    #[test]
    fn skewed_words_prefer_low_symbols() {
        let words = skewed_words(&InputSet::train(0), 1, 4000, 16);
        let low = words.iter().filter(|&&w| w < 8).count();
        assert!(low > 2400, "skew too weak: {low}/4000");
        assert!(words.iter().all(|&w| w < 16));
    }

    #[test]
    fn random_words_respect_range_and_seed() {
        let a = random_words(&InputSet::train(0), 9, 100, 5, 50);
        let b2 = random_words(&InputSet::train(0), 9, 100, 5, 50);
        let c = random_words(&InputSet::train(1), 9, 100, 5, 50);
        assert_eq!(a, b2);
        assert_ne!(a, c);
        assert!(a.iter().all(|&w| (5..50).contains(&w)));
    }
}
