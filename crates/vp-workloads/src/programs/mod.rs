//! The nine workload program generators.
//!
//! Every generator follows the same contract:
//!
//! - `build(&InputSet) -> Program` produces a runnable `vp-isa` program;
//! - the **text segment is identical across inputs** — only data-segment
//!   contents (array values, data-carried loop bounds) vary — so profile
//!   images from different training runs align address-by-address;
//! - all randomness comes from the input's seeded RNG: builds are
//!   deterministic.
//!
//! Shared code-generation idioms live in [`util`].

pub mod compress;
pub mod gcc;
pub mod go;
pub mod hydro2d;
pub mod ijpeg;
pub mod li;
pub mod m88ksim;
pub mod mgrid;
pub mod perl;
pub mod su2cor;
pub mod swim;
pub mod tomcatv;
pub mod util;
pub mod vortex;

#[cfg(test)]
mod contract_tests {
    use crate::{InputSet, Workload, WorkloadKind};
    use vp_sim::{run, InstrMix, RunLimits, RunStatus};

    /// Every workload must halt, retire a non-trivial instruction stream,
    /// and keep its text identical across inputs.
    #[test]
    fn all_workloads_honour_the_generator_contract() {
        for kind in WorkloadKind::ALL_EXTENDED {
            let w = Workload::new(kind);
            let p0 = w.program(&InputSet::train(0));
            let p1 = w.program(&InputSet::train(1));
            let pr = w.program(&InputSet::reference());
            assert_eq!(
                p0.text(),
                p1.text(),
                "{kind}: text differs across train inputs"
            );
            assert_eq!(
                p0.text(),
                pr.text(),
                "{kind}: text differs on reference input"
            );
            assert_ne!(
                p0.data(),
                p1.data(),
                "{kind}: data should differ across inputs"
            );

            let mut mix = InstrMix::new();
            let limits = RunLimits::with_max(5_000_000);
            let summary = run(&p0, &mut mix, limits).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(summary.status(), RunStatus::Halted, "{kind} must halt");
            assert!(
                summary.instructions() >= 50_000,
                "{kind} retired only {} instructions",
                summary.instructions()
            );
            assert!(
                summary.instructions() <= 3_000_000,
                "{kind} is too long for the experiment budget ({})",
                summary.instructions()
            );
            if kind.is_fp() {
                assert!(
                    mix.count(vp_isa::OpCategory::FpAlu) > 1000,
                    "{kind} must exercise FP ({mix})"
                );
            }
        }
    }

    /// Different inputs must change dynamic behaviour (instruction counts),
    /// like different SPEC input files do.
    #[test]
    fn inputs_change_dynamic_length() {
        use vp_sim::NullTracer;
        for kind in WorkloadKind::ALL_EXTENDED {
            let w = Workload::new(kind);
            let lens: Vec<u64> = InputSet::train_set(3)
                .iter()
                .map(|i| {
                    run(
                        &w.program(i),
                        &mut NullTracer,
                        RunLimits::with_max(5_000_000),
                    )
                    .unwrap()
                    .instructions()
                })
                .collect();
            assert!(
                lens.windows(2).any(|w| w[0] != w[1]),
                "{kind}: all inputs ran identically long ({lens:?})"
            );
        }
    }
}
