//! The workload façade.

use vp_isa::{InstrAddr, Program};

use crate::programs;
use crate::{InputSet, WorkloadKind};

/// A benchmark workload: a program generator plus its experiment metadata.
///
/// # Examples
///
/// ```
/// use vp_workloads::{Workload, WorkloadKind, InputSet};
/// let w = Workload::new(WorkloadKind::Compress);
/// let p = w.program(&InputSet::train(0));
/// assert_eq!(p.name(), "compress");
/// assert!(w.phase_split().is_none()); // only FP workloads have phases
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    kind: WorkloadKind,
}

impl Workload {
    /// Number of training inputs the paper's Section 4 experiments use.
    pub const PAPER_TRAIN_RUNS: u32 = 5;

    /// Creates the workload of the given kind.
    #[must_use]
    pub fn new(kind: WorkloadKind) -> Self {
        Workload { kind }
    }

    /// The paper's nine Table 4.1 workloads.
    #[must_use]
    pub fn all() -> Vec<Workload> {
        WorkloadKind::ALL.into_iter().map(Workload::new).collect()
    }

    /// All thirteen workloads, including the Figure-2.2-only FP codes.
    #[must_use]
    pub fn all_extended() -> Vec<Workload> {
        WorkloadKind::ALL_EXTENDED
            .into_iter()
            .map(Workload::new)
            .collect()
    }

    /// The workload's identity.
    #[must_use]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The workload's short name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Generates the program for one input set.
    ///
    /// The text segment is identical for every input; only data contents
    /// change (verified by the generator contract tests).
    #[must_use]
    pub fn program(&self, input: &InputSet) -> Program {
        match self.kind {
            WorkloadKind::Go => programs::go::build(input),
            WorkloadKind::M88ksim => programs::m88ksim::build(input),
            WorkloadKind::Gcc => programs::gcc::build(input),
            WorkloadKind::Compress => programs::compress::build(input),
            WorkloadKind::Li => programs::li::build(input),
            WorkloadKind::Ijpeg => programs::ijpeg::build(input),
            WorkloadKind::Perl => programs::perl::build(input),
            WorkloadKind::Vortex => programs::vortex::build(input),
            WorkloadKind::Mgrid => programs::mgrid::build(input),
            WorkloadKind::Swim => programs::swim::build(input),
            WorkloadKind::Tomcatv => programs::tomcatv::build(input),
            WorkloadKind::Su2cor => programs::su2cor::build(input),
            WorkloadKind::Hydro2d => programs::hydro2d::build(input),
        }
    }

    /// The default five training inputs.
    #[must_use]
    pub fn train_inputs(&self) -> Vec<InputSet> {
        InputSet::train_set(Self::PAPER_TRAIN_RUNS)
    }

    /// For FP workloads, the static address where the computation phase
    /// begins (the paper profiles FP init and computation separately).
    #[must_use]
    pub fn phase_split(&self) -> Option<InstrAddr> {
        match self.kind {
            WorkloadKind::Mgrid => Some(programs::mgrid::phase_split()),
            WorkloadKind::Swim => Some(programs::swim::phase_split()),
            WorkloadKind::Tomcatv => Some(programs::tomcatv::phase_split()),
            WorkloadKind::Su2cor => Some(programs::su2cor::phase_split()),
            WorkloadKind::Hydro2d => Some(programs::hydro2d::phase_split()),
            _ => None,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_kind() {
        let all = Workload::all();
        assert_eq!(all.len(), 9);
        for kind in WorkloadKind::ALL {
            assert!(all.iter().any(|w| w.kind() == kind));
        }
    }

    #[test]
    fn exactly_the_fp_workloads_have_phase_splits() {
        for w in Workload::all_extended() {
            assert_eq!(w.phase_split().is_some(), w.kind().is_fp(), "{w}");
        }
    }

    #[test]
    fn program_names_match_kind() {
        for w in Workload::all_extended() {
            assert_eq!(w.program(&InputSet::train(0)).name(), w.name());
        }
    }

    #[test]
    fn train_inputs_are_five() {
        assert_eq!(Workload::new(WorkloadKind::Go).train_inputs().len(), 5);
    }
}
