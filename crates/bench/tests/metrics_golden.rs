//! Guards the observability layer's central contract: requesting a run
//! manifest must not perturb experiment output. Runs the real `repro-all`
//! binary with and without observability flags (`--metrics-out`,
//! `--trace-out`, `--sample-ms`, `--attribution`, `--profile-hz`,
//! `--profile-out`) and asserts stdout is byte-identical, then
//! sanity-checks the emitted manifest, the time-series samples, the
//! Chrome trace, the per-PC attribution layer (deterministic across
//! `--jobs`, totals reconciling exactly with the predictor counters),
//! the sampling profiler's folded/flamegraph/manifest exports, and the
//! `manifest-diff` / `attribution-report` reporting tools.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

use vp_obs::json::Json;
use vp_obs::{RunManifest, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4};

const ARGS: &[&str] = &["--workloads=compress,ijpeg", "--train-runs=2", "--jobs=2"];

fn run_repro_all(extra: &[String]) -> std::process::Output {
    let exe = env!("CARGO_BIN_EXE_repro-all");
    Command::new(exe)
        .args(ARGS)
        .args(extra)
        .output()
        .expect("repro-all runs")
}

#[test]
fn metrics_out_leaves_stdout_byte_identical() {
    let manifest_path =
        std::env::temp_dir().join(format!("provp-metrics-golden-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&manifest_path);

    let plain = run_repro_all(&[]);
    let instrumented = run_repro_all(&[format!("--metrics-out={}", manifest_path.display())]);

    assert!(plain.status.success(), "plain run failed");
    assert!(instrumented.status.success(), "instrumented run failed");
    assert_eq!(
        plain.stdout, instrumented.stdout,
        "--metrics-out must not change experiment stdout"
    );
    assert!(
        plain.stderr.is_empty(),
        "plain run must not write to stderr: {}",
        String::from_utf8_lossy(&plain.stderr)
    );

    let manifest = parse_manifest(&manifest_path);
    std::fs::remove_file(&manifest_path).unwrap();

    // The manifest must actually describe this run.
    assert_eq!(manifest.bin, "repro-all");
    assert!(manifest.wall_ms > 0.0);
    assert!(manifest.peak_rss_bytes > 0, "peak RSS must be captured");
    assert!(
        manifest
            .args
            .iter()
            .any(|a| a.starts_with("--metrics-out=")),
        "argv recorded"
    );

    // Phase rows: the root span plus one row per repro-all experiment.
    let has_phase = |p: &str| manifest.phases.iter().any(|e| e.path == p);
    assert!(has_phase("repro-all"), "root span present");
    for sub in [
        "table_2_1",
        "fig_2_2",
        "fig_2_3",
        "fig_4",
        "classification",
        "table_5_1",
        "finite_table",
        "table_5_2",
    ] {
        assert!(
            has_phase(&format!("repro-all/{sub}")),
            "missing phase row repro-all/{sub}"
        );
    }
    // Suite phases nest under their experiment (profiling happens under
    // the first experiment that needs each image).
    assert!(
        manifest.phases.iter().any(|e| e.path.ends_with("/profile")),
        "profile spans must nest under experiments"
    );

    // Counters: simulator throughput and trace-store behaviour.
    let counter = |k: &str| manifest.counters.get(k).copied().unwrap_or(0);
    assert!(counter("sim.runs") > 0);
    assert!(counter("sim.instructions") > 0);
    assert!(counter("sim.wall_ns") > 0);
    assert!(manifest.sim_instr_per_sec() > 0.0);
    assert!(counter("trace_store.requests") > 0);
    assert_eq!(
        counter("trace_store.memory_hits") + counter("trace_store.misses"),
        counter("trace_store.requests"),
        "trace-store snapshot must balance"
    );
    assert!(manifest.trace_hit_rate() > 0.0, "experiments share traces");
    assert!(counter("predictor.accesses") > 0);
    assert!(
        manifest.gauges.get("predictor.occupancy.max").copied() > Some(0),
        "table occupancy observed"
    );
    // Without --attribution the manifest carries no attribution array
    // (and therefore stays at a pre-v3 schema).
    assert!(manifest.attribution.is_empty(), "attribution is opt-in");
    assert_ne!(manifest.schema(), SCHEMA_V3);
}

fn parse_manifest(path: &Path) -> RunManifest {
    let text = std::fs::read_to_string(path).expect("manifest written");
    assert!(text.ends_with('\n'), "manifest ends with newline");
    RunManifest::parse(text.trim_end()).expect("manifest parses")
}

/// Full observability run: `--trace-out` + `--sample-ms` + `--metrics-out`
/// together must still leave experiment stdout byte-identical, while
/// producing a v2 manifest whose time series is internally consistent and
/// a Chrome trace that satisfies the `trace_event` validity contract
/// (every `B` matched by an `E` on its thread, timestamps monotone per
/// thread).
#[test]
fn trace_and_samples_leave_stdout_byte_identical() {
    let pid = std::process::id();
    let manifest_path = std::env::temp_dir().join(format!("provp-trace-golden-{pid}.json"));
    let trace_path = std::env::temp_dir().join(format!("provp-trace-golden-{pid}.trace.json"));
    let _ = std::fs::remove_file(&manifest_path);
    let _ = std::fs::remove_file(&trace_path);

    let plain = run_repro_all(&[]);
    let instrumented = run_repro_all(&[
        format!("--metrics-out={}", manifest_path.display()),
        format!("--trace-out={}", trace_path.display()),
        "--sample-ms=25".to_owned(),
    ]);

    assert!(plain.status.success(), "plain run failed");
    assert!(instrumented.status.success(), "instrumented run failed");
    assert_eq!(
        plain.stdout, instrumented.stdout,
        "--trace-out/--sample-ms must not change experiment stdout"
    );

    // -- v2 manifest with an internally consistent time series --
    let manifest = parse_manifest(&manifest_path);
    std::fs::remove_file(&manifest_path).unwrap();
    assert_eq!(manifest.schema(), SCHEMA_V2, "samples promote to v2");
    assert!(
        manifest.samples.len() >= 2,
        "immediate + final samples guarantee >= 2 points, got {}",
        manifest.samples.len()
    );
    let counter = |m: &BTreeMap<String, u64>, k: &str| m.get(k).copied().unwrap_or(0);
    for s in &manifest.samples {
        assert_eq!(
            counter(&s.counters, "trace_store.memory_hits")
                + counter(&s.counters, "trace_store.misses"),
            counter(&s.counters, "trace_store.requests"),
            "mid-run sample at t={}ms must balance (lock-consistent hook)",
            s.t_ms
        );
    }
    for pair in manifest.samples.windows(2) {
        assert!(
            pair[0].t_ms <= pair[1].t_ms,
            "sample series must be monotone"
        );
        assert!(
            counter(&pair[0].counters, "trace_store.requests")
                <= counter(&pair[1].counters, "trace_store.requests"),
            "monotone counters must not go backwards across samples"
        );
    }
    // The ring-drop counter is always published on traced runs (0 when
    // nothing was lost), so dashboards can rely on the key.
    assert!(
        manifest.counters.contains_key("trace.dropped_events"),
        "traced runs must report trace.dropped_events (even when 0)"
    );

    // -- Chrome trace validity --
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    std::fs::remove_file(&trace_path).unwrap();
    assert!(text.ends_with('\n'), "trace ends with newline");
    let names = assert_chrome_trace_valid(text.trim_end());
    for expected in ["experiment.start", "experiment.finish", "repro-all"] {
        assert!(
            names.iter().any(|n| n == expected),
            "trace must record {expected}; saw {names:?}"
        );
    }
}

/// Asserts the Chrome `trace_event` validity contract on a rendered
/// trace document and returns the event names seen: every record carries
/// name/ph/ts/pid/tid, every `B` is matched by a later `E` on the same
/// tid, and timestamps are monotone per tid.
fn assert_chrome_trace_valid(doc: &str) -> Vec<String> {
    let parsed = Json::parse(doc).expect("trace is valid JSON");
    let records = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!records.is_empty(), "trace must not be empty");
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    let mut last: BTreeMap<u64, f64> = BTreeMap::new();
    let mut names = Vec::new();
    for r in records {
        let tid = r.get("tid").and_then(Json::as_u64).expect("tid");
        let ts = r.get("ts").and_then(Json::as_f64).expect("ts");
        let ph = r.get("ph").and_then(Json::as_str).expect("ph");
        let name = r.get("name").and_then(Json::as_str).expect("name");
        assert!(r.get("pid").and_then(Json::as_u64).is_some(), "pid");
        names.push(name.to_owned());
        let prev = last.entry(tid).or_insert(0.0);
        assert!(ts >= *prev, "timestamps must be monotone per thread");
        *prev = ts;
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                assert!(*d > 0, "E without open B on tid {tid}");
                *d -= 1;
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "unclosed B on tid {tid}");
    }
    names
}

/// The per-PC attribution layer end to end: `--attribution` must leave
/// experiment stdout byte-identical, promote the manifest to schema v3,
/// produce attribution tables that are byte-identical between `--jobs=1`
/// and `--jobs=2` (shard-merge determinism), reconcile exactly with the
/// aggregate predictor counters, and render through `attribution-report`
/// in all three formats.
#[test]
fn attribution_is_deterministic_and_reconciles() {
    let pid = std::process::id();
    let path_j2 = std::env::temp_dir().join(format!("provp-attr-golden-j2-{pid}.json"));
    let path_j1 = std::env::temp_dir().join(format!("provp-attr-golden-j1-{pid}.json"));
    let _ = std::fs::remove_file(&path_j2);
    let _ = std::fs::remove_file(&path_j1);

    let plain = run_repro_all(&[]);
    let attributed = run_repro_all(&[
        "--attribution".to_owned(),
        format!("--metrics-out={}", path_j2.display()),
    ]);
    // --jobs=1 overrides the baseline --jobs=2 (later flag wins).
    let serial = run_repro_all(&[
        "--jobs=1".to_owned(),
        "--attribution".to_owned(),
        format!("--metrics-out={}", path_j1.display()),
    ]);

    assert!(plain.status.success() && attributed.status.success() && serial.status.success());
    assert_eq!(
        plain.stdout, attributed.stdout,
        "--attribution must not change experiment stdout"
    );
    assert_eq!(
        plain.stdout, serial.stdout,
        "stdout must stay byte-identical at any job count"
    );

    let m2 = parse_manifest(&path_j2);
    let m1 = parse_manifest(&path_j1);
    std::fs::remove_file(&path_j1).unwrap();

    assert_eq!(m2.schema(), SCHEMA_V3, "attribution promotes to v3");
    assert!(!m2.attribution.is_empty(), "attribution collected");

    // Shard-merge determinism: the attribution arrays at jobs=1 and
    // jobs=2 must be byte-identical (same runs, same order, same
    // counts, same drift), even though wall times differ.
    let render = |m: &RunManifest| {
        Json::Arr(m.attribution.iter().map(|r| r.to_json()).collect()).to_string()
    };
    assert_eq!(
        render(&m1),
        render(&m2),
        "attribution must be bit-identical across --jobs"
    );

    // Exact reconciliation with the aggregate predictor counters: the
    // per-run totals sum to the run-wide counters, and every raw miss is
    // charged to exactly one cause.
    let counter = |k: &str| m2.counters.get(k).copied().unwrap_or(0);
    let sum = |f: fn(&vp_obs::AttributionTotals) -> u64| {
        m2.attribution.iter().map(|r| f(&r.totals)).sum::<u64>()
    };
    assert_eq!(sum(|t| t.accesses), counter("predictor.accesses"));
    assert_eq!(sum(|t| t.hits), counter("predictor.hits"));
    assert_eq!(sum(|t| t.raw_correct), counter("predictor.raw_correct"));
    assert_eq!(sum(|t| t.speculated), counter("predictor.speculated"));
    assert_eq!(
        sum(|t| t.speculated_correct),
        counter("predictor.speculated_correct")
    );
    for run in &m2.attribution {
        assert_eq!(
            run.totals.causes.values().sum::<u64>(),
            run.totals.accesses - run.totals.raw_correct,
            "{}: every raw miss charged to exactly one cause",
            run.label()
        );
        for pc in &run.pcs {
            assert_eq!(
                pc.causes.values().sum::<u64>(),
                pc.accesses - pc.raw_correct,
                "{} @{:#x}: per-PC causes must partition the misses",
                run.label(),
                pc.pc
            );
        }
    }
    // Profile-guided runs must carry drift for profiled PCs.
    assert!(
        m2.attribution
            .iter()
            .filter(|r| r.threshold.is_some())
            .any(|r| r.pcs.iter().any(|pc| pc.drift.is_some())),
        "profile-guided runs must report drift"
    );

    // -- attribution-report golden --
    let report = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_attribution-report"))
            .arg(format!("--manifest={}", path_j2.display()))
            .args(extra)
            .output()
            .expect("attribution-report runs");
        assert!(out.status.success(), "attribution-report failed");
        String::from_utf8(out.stdout).unwrap()
    };
    let table = report(&[]);
    assert!(
        table.contains("== attribution:"),
        "table report renders runs:\n{table}"
    );
    let md = report(&["--format=markdown", "--top=10"]);
    assert!(
        md.contains("### Attribution:"),
        "markdown report renders runs:\n{md}"
    );
    let json = report(&["--format=json"]);
    let doc = Json::parse(json.trim_end()).expect("report JSON parses");
    assert_eq!(
        doc.as_arr().map(<[Json]>::len),
        Some(m2.attribution.len()),
        "JSON report carries every run"
    );
    // Usage errors exit 2.
    let usage = Command::new(env!("CARGO_BIN_EXE_attribution-report"))
        .output()
        .expect("attribution-report runs");
    assert_eq!(usage.status.code(), Some(2), "missing --manifest exits 2");

    std::fs::remove_file(&path_j2).unwrap();
}

/// The sampling profiler end to end: `--profile-hz`/`--profile-out` must
/// leave experiment stdout byte-identical, promote the manifest to
/// schema v4 with an internally consistent `profile` section, write a
/// collapsed-stack file that round-trips through the flamegraph renderer
/// deterministically (the re-rendered SVG is byte-identical to the one
/// the binary wrote), and publish the `profiler.*` loss counters.
#[test]
fn profiler_leaves_stdout_byte_identical() {
    let pid = std::process::id();
    let manifest_path = std::env::temp_dir().join(format!("provp-prof-golden-{pid}.json"));
    let folded_path = std::env::temp_dir().join(format!("provp-prof-golden-{pid}.folded"));
    let svg_path = folded_path.with_extension("svg");
    let _ = std::fs::remove_file(&manifest_path);
    let _ = std::fs::remove_file(&folded_path);
    let _ = std::fs::remove_file(&svg_path);

    let plain = run_repro_all(&[]);
    let profiled = run_repro_all(&[
        "--profile-hz=199".to_owned(),
        format!("--profile-out={}", folded_path.display()),
        format!("--metrics-out={}", manifest_path.display()),
    ]);

    assert!(plain.status.success(), "plain run failed");
    assert!(profiled.status.success(), "profiled run failed");
    assert_eq!(
        plain.stdout, profiled.stdout,
        "--profile-hz/--profile-out must not change experiment stdout"
    );

    // -- v4 manifest with a consistent profile section --
    let manifest = parse_manifest(&manifest_path);
    std::fs::remove_file(&manifest_path).unwrap();
    assert_eq!(manifest.schema(), SCHEMA_V4, "profile promotes to v4");
    let profile = manifest.profile.as_ref().expect("profile section present");
    assert_eq!(profile.hz, 199);
    assert!(profile.samples > 0, "a multi-second run must be sampled");
    assert!(profile.threads >= 1);
    assert!(!profile.hot_stacks.is_empty());
    assert!(!profile.phases.is_empty());
    // Every sample opens under the root span, so the root phase carries
    // (almost) the whole run; small slack for pre/post-span samples.
    let root = profile
        .phases
        .iter()
        .find(|p| p.path == "repro-all")
        .expect("root phase profiled");
    assert!(
        root.total_share > 0.9,
        "root span must dominate the samples, got {}",
        root.total_share
    );
    for p in &profile.phases {
        assert!(
            p.self_share <= p.total_share + 1e-12,
            "{}: self_share may not exceed total_share",
            p.path
        );
    }
    // Loss counters are published even when nothing was dropped, so the
    // metrics-table footer (and dashboards) can rely on the keys.
    assert!(
        manifest.counters.contains_key("profiler.dropped_samples"),
        "profiled runs must report profiler.dropped_samples (even when 0)"
    );
    assert_eq!(
        manifest.counters.get("profiler.samples").copied(),
        Some(profile.samples),
        "manifest counter must agree with the profile section"
    );

    // -- folded output round-trips through the flamegraph renderer --
    let folded_text = std::fs::read_to_string(&folded_path).expect("folded file written");
    std::fs::remove_file(&folded_path).unwrap();
    let folded = vp_obs::Profile::parse_folded(&folded_text).expect("folded file parses");
    assert_eq!(
        folded.values().sum::<u64>(),
        profile.samples,
        "folded counts must sum to the sampled total"
    );
    assert!(
        folded.keys().all(|k| k.starts_with("repro-all")),
        "every stack is rooted at the binary's root span"
    );

    let svg = std::fs::read_to_string(&svg_path).expect("flamegraph written");
    std::fs::remove_file(&svg_path).unwrap();
    let stem = folded_path.file_stem().unwrap().to_string_lossy();
    let title = format!(
        "{stem} @ {} Hz ({} samples, {} threads)",
        profile.hz, profile.samples, profile.threads
    );
    assert_eq!(
        svg,
        vp_obs::flamegraph_svg(&folded, &title),
        "re-rendering the folded file must reproduce the SVG byte for byte"
    );
}

/// Golden test for the `manifest-diff` attribution tool: a synthesized
/// regression (one slower phase, one counter swing) must be blamed in
/// all three output formats, with exit code 0 (differences are reported,
/// never an error) and usage errors exiting 2.
#[test]
fn manifest_diff_attributes_synthesized_regression() {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("provp-diff-golden-{pid}"));
    std::fs::create_dir_all(&dir).unwrap();

    let mut base = RunManifest {
        bin: "repro-all".to_owned(),
        wall_ms: 1_000.0,
        ..RunManifest::default()
    };
    base.phases.push(vp_obs::manifest::PhaseEntry {
        path: "repro-all/fig_4".to_owned(),
        count: 1,
        total_ms: 100.0,
        min_ms: 100.0,
        max_ms: 100.0,
    });
    base.counters
        .insert("sim.instructions".to_owned(), 1_000_000);
    base.counters
        .insert("sim.wall_ns".to_owned(), 1_000_000_000);
    base.counters.insert("trace_store.requests".to_owned(), 24);

    let mut cur = base.clone();
    cur.wall_ms = 1_400.0;
    cur.phases[0].total_ms = 450.0; // the regression to blame
    cur.counters.insert("sim.wall_ns".to_owned(), 2_000_000_000); // throughput halved
    cur.counters.insert("trace_store.requests".to_owned(), 48);

    let base_path = dir.join("base.json");
    let cur_path = dir.join("cur.json");
    std::fs::write(&base_path, base.to_json()).unwrap();
    std::fs::write(&cur_path, cur.to_json()).unwrap();

    let run = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_manifest-diff"))
            .arg(format!("--baseline={}", base_path.display()))
            .arg(format!("--manifest={}", cur_path.display()))
            .args(extra)
            .output()
            .expect("manifest-diff runs")
    };

    // Table (default): the slow phase and moved counters are attributed.
    let table = run(&[]);
    assert!(table.status.success(), "diff reports, never errors");
    let text = String::from_utf8(table.stdout).unwrap();
    assert!(
        text.contains("repro-all/fig_4"),
        "blames the slow phase:\n{text}"
    );
    assert!(
        text.contains("trace_store.requests"),
        "counter swing listed:\n{text}"
    );
    assert!(
        text.contains("sim_instr_per_sec"),
        "derived throughput shown:\n{text}"
    );

    // Markdown: a GitHub table for $GITHUB_STEP_SUMMARY.
    let md = run(&["--format=markdown"]);
    assert!(md.status.success());
    let md_text = String::from_utf8(md.stdout).unwrap();
    assert!(
        md_text.contains("### Manifest diff"),
        "markdown heading:\n{md_text}"
    );
    assert!(
        md_text.contains("| phase |"),
        "markdown phase table:\n{md_text}"
    );
    assert!(md_text.contains("repro-all/fig_4"));

    // JSON: parses, carries its own schema tag, and is never truncated.
    let json = run(&["--format=json", "--top=1"]);
    assert!(json.status.success());
    let json_text = String::from_utf8(json.stdout).unwrap();
    let doc = Json::parse(json_text.trim_end()).expect("diff JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("provp-manifest-diff/v1")
    );
    let counters = doc.get("counters").and_then(Json::as_arr).unwrap();
    assert!(
        counters.len() >= 2,
        "--top must not truncate JSON output: {json_text}"
    );

    // Usage and read errors exit 2.
    let missing = Command::new(env!("CARGO_BIN_EXE_manifest-diff"))
        .arg("--baseline=/nonexistent/base.json")
        .arg(format!("--manifest={}", cur_path.display()))
        .output()
        .expect("manifest-diff runs");
    assert_eq!(missing.status.code(), Some(2), "unreadable input exits 2");
    let usage = Command::new(env!("CARGO_BIN_EXE_manifest-diff"))
        .output()
        .expect("manifest-diff runs");
    assert_eq!(usage.status.code(), Some(2), "missing flags exit 2");

    std::fs::remove_dir_all(&dir).unwrap();
}
