//! Guards the observability layer's central contract: requesting a run
//! manifest must not perturb experiment output. Runs the real `repro-all`
//! binary twice — with and without `--metrics-out` — and asserts stdout
//! is byte-identical, then sanity-checks the emitted manifest.

use std::path::Path;
use std::process::Command;

use vp_obs::RunManifest;

const ARGS: &[&str] = &["--workloads=compress,ijpeg", "--train-runs=2", "--jobs=2"];

fn run_repro_all(extra: &[String]) -> std::process::Output {
    let exe = env!("CARGO_BIN_EXE_repro-all");
    Command::new(exe)
        .args(ARGS)
        .args(extra)
        .output()
        .expect("repro-all runs")
}

#[test]
fn metrics_out_leaves_stdout_byte_identical() {
    let manifest_path =
        std::env::temp_dir().join(format!("provp-metrics-golden-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&manifest_path);

    let plain = run_repro_all(&[]);
    let instrumented = run_repro_all(&[format!("--metrics-out={}", manifest_path.display())]);

    assert!(plain.status.success(), "plain run failed");
    assert!(instrumented.status.success(), "instrumented run failed");
    assert_eq!(
        plain.stdout, instrumented.stdout,
        "--metrics-out must not change experiment stdout"
    );
    assert!(
        plain.stderr.is_empty(),
        "plain run must not write to stderr: {}",
        String::from_utf8_lossy(&plain.stderr)
    );

    let manifest = parse_manifest(&manifest_path);
    std::fs::remove_file(&manifest_path).unwrap();

    // The manifest must actually describe this run.
    assert_eq!(manifest.bin, "repro-all");
    assert!(manifest.wall_ms > 0.0);
    assert!(manifest.peak_rss_bytes > 0, "peak RSS must be captured");
    assert!(
        manifest
            .args
            .iter()
            .any(|a| a.starts_with("--metrics-out=")),
        "argv recorded"
    );

    // Phase rows: the root span plus one row per repro-all experiment.
    let has_phase = |p: &str| manifest.phases.iter().any(|e| e.path == p);
    assert!(has_phase("repro-all"), "root span present");
    for sub in [
        "table_2_1",
        "fig_2_2",
        "fig_2_3",
        "fig_4",
        "classification",
        "table_5_1",
        "finite_table",
        "table_5_2",
    ] {
        assert!(
            has_phase(&format!("repro-all/{sub}")),
            "missing phase row repro-all/{sub}"
        );
    }
    // Suite phases nest under their experiment (profiling happens under
    // the first experiment that needs each image).
    assert!(
        manifest.phases.iter().any(|e| e.path.ends_with("/profile")),
        "profile spans must nest under experiments"
    );

    // Counters: simulator throughput and trace-store behaviour.
    let counter = |k: &str| manifest.counters.get(k).copied().unwrap_or(0);
    assert!(counter("sim.runs") > 0);
    assert!(counter("sim.instructions") > 0);
    assert!(counter("sim.wall_ns") > 0);
    assert!(manifest.sim_instr_per_sec() > 0.0);
    assert!(counter("trace_store.requests") > 0);
    assert_eq!(
        counter("trace_store.memory_hits") + counter("trace_store.misses"),
        counter("trace_store.requests"),
        "trace-store snapshot must balance"
    );
    assert!(manifest.trace_hit_rate() > 0.0, "experiments share traces");
    assert!(counter("predictor.accesses") > 0);
    assert!(
        manifest.gauges.get("predictor.occupancy.max").copied() > Some(0),
        "table occupancy observed"
    );
}

fn parse_manifest(path: &Path) -> RunManifest {
    let text = std::fs::read_to_string(path).expect("manifest written");
    assert!(text.ends_with('\n'), "manifest ends with newline");
    RunManifest::parse(text.trim_end()).expect("manifest parses")
}
