//! Criterion micro-benchmarks for the simulation stack: raw functional
//! simulation, simulation under the profile collector, and simulation under
//! the ILP analyzer — i.e. the cost of each trace consumer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use provp_core::PredictorTracer;
use vp_ilp::{IlpAnalyzer, IlpConfig};
use vp_predictor::PredictorConfig;
use vp_profile::ProfileCollector;
use vp_sim::{run, NullTracer, RunLimits};
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn bench_trace_consumers(c: &mut Criterion) {
    let workload = Workload::new(WorkloadKind::Compress);
    let program = workload.program(&InputSet::train(0));
    let instructions = run(&program, &mut NullTracer, RunLimits::default())
        .unwrap()
        .instructions();

    let mut group = c.benchmark_group("trace-consumers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instructions));

    group.bench_function("functional-sim", |b| {
        b.iter(|| {
            run(&program, &mut NullTracer, RunLimits::default())
                .unwrap()
                .instructions()
        });
    });
    group.bench_function("profile-collector", |b| {
        b.iter(|| {
            let mut collector = ProfileCollector::new("bench");
            run(&program, &mut collector, RunLimits::default()).unwrap();
            collector.into_image().len()
        });
    });
    group.bench_function("predictor-tracer", |b| {
        b.iter(|| {
            let mut t = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
            run(&program, &mut t, RunLimits::default()).unwrap();
            t.into_stats().speculated_correct
        });
    });
    group.bench_function("ilp-analyzer", |b| {
        b.iter(|| {
            let mut a = IlpAnalyzer::new(IlpConfig::paper_vp_fsm());
            run(&program, &mut a, RunLimits::default()).unwrap();
            a.finish().cycles
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace_consumers);
criterion_main!(benches);
