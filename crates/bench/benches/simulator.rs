//! Micro-benchmarks for the simulation stack: raw functional simulation,
//! simulation under the profile collector, and simulation under the ILP
//! analyzer — i.e. the cost of each trace consumer — plus trace replay,
//! the path the `TraceStore` substitutes for re-simulation.

use provp_bench::micro::Group;
use provp_core::PredictorTracer;
use vp_ilp::{IlpAnalyzer, IlpConfig};
use vp_predictor::PredictorConfig;
use vp_profile::ProfileCollector;
use vp_sim::record::Trace;
use vp_sim::{run, NullTracer, RunLimits};
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn main() {
    let workload = Workload::new(WorkloadKind::Compress);
    let program = workload.program(&InputSet::train(0));
    let instructions = run(&program, &mut NullTracer, RunLimits::default())
        .unwrap()
        .instructions();
    println!("trace-consumers: {instructions} dynamic instructions per sample");

    let trace = Trace::capture(&program, RunLimits::default()).unwrap();
    let mut group = Group::new("trace-consumers").samples(10);

    group.bench("functional-sim", || {
        run(&program, &mut NullTracer, RunLimits::default())
            .unwrap()
            .instructions()
    });
    group.bench("trace-replay", || {
        let mut mix = vp_sim::InstrMix::new();
        trace.replay(&program, &mut mix).unwrap();
        mix.total()
    });
    group.bench("profile-collector", || {
        let mut collector = ProfileCollector::new("bench");
        run(&program, &mut collector, RunLimits::default()).unwrap();
        collector.into_image().len()
    });
    group.bench("profile-collector-replay", || {
        let mut collector = ProfileCollector::new("bench");
        trace.replay(&program, &mut collector).unwrap();
        collector.into_image().len()
    });
    group.bench("predictor-tracer", || {
        let mut t = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
        run(&program, &mut t, RunLimits::default()).unwrap();
        t.into_stats().speculated_correct
    });
    group.bench("ilp-analyzer", || {
        let mut a = IlpAnalyzer::new(IlpConfig::paper_vp_fsm());
        run(&program, &mut a, RunLimits::default()).unwrap();
        a.finish().cycles
    });
}
