//! Micro-benchmarks for the predictor structures: the cost of one `access`
//! per predictor/classifier configuration, on strided, repeating and random
//! value streams.

use provp_bench::micro::{black_box, Group};
use vp_isa::{Directive, InstrAddr};
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};

/// 64 static instructions x 1024 dynamic accesses each, interleaved.
fn access_stream(pattern: &str) -> Vec<(InstrAddr, u64)> {
    let mut out = Vec::with_capacity(64 * 1024);
    for round in 0..1024u64 {
        for addr in 0..64u32 {
            let value = match pattern {
                "stride" => u64::from(addr) * 1000 + round * 3,
                "repeat" => u64::from(addr) * 7,
                _ => (round * 2654435761 + u64::from(addr)).wrapping_mul(0x9e3779b97f4a7c15),
            };
            out.push((InstrAddr::new(addr), value));
        }
    }
    out
}

fn main() {
    let configs = [
        (
            "infinite-stride-fsm",
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
        ),
        ("table-stride-fsm", PredictorConfig::spec_table_stride_fsm()),
        (
            "table-stride-profile",
            PredictorConfig::spec_table_stride_profile(),
        ),
        (
            "hybrid",
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(128, 2),
                last_value: TableGeometry::SPEC_512_2WAY,
            },
        ),
    ];
    let mut group = Group::new("predictor-access").samples(20);
    for pattern in ["stride", "repeat", "random"] {
        let stream = access_stream(pattern);
        for (name, config) in &configs {
            group.bench(&format!("{name}/{pattern}"), || {
                let mut p = config.build();
                for &(addr, value) in &stream {
                    black_box(p.access(addr, Directive::Stride, value));
                }
                p.stats().speculated_correct
            });
        }
    }
}
