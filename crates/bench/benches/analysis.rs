//! Criterion micro-benchmarks for the analysis-side components that run
//! over whole profile vectors and traces: the Section 4 metrics, decile
//! histogram construction, profile-image merging and trace serialisation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vp_profile::{merge, ProfileCollector};
use vp_sim::record::{read_trace, write_trace, TraceRecorder};
use vp_sim::{run, RunLimits};
use vp_stats::metrics::{average_distance, max_distance};
use vp_stats::DecileHistogram;
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn profile_images(n: u32) -> Vec<vp_profile::ProfileImage> {
    let w = Workload::new(WorkloadKind::Gcc);
    InputSet::train_set(n)
        .iter()
        .map(|input| {
            let mut c = ProfileCollector::new("bench");
            run(&w.program(input), &mut c, RunLimits::default()).unwrap();
            c.into_image()
        })
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    // 5 runs x 2000 coordinates, the realistic Section 4 shape.
    let vectors: Vec<Vec<f64>> = (0..5)
        .map(|r| {
            (0..2000)
                .map(|i| ((i * 37 + r * 11) % 101) as f64)
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("stats");
    group.sample_size(30);
    group.throughput(Throughput::Elements(2000));
    group.bench_function("max-distance", |b| b.iter(|| max_distance(&vectors)));
    group.bench_function("average-distance", |b| {
        b.iter(|| average_distance(&vectors))
    });
    group.bench_function("decile-histogram", |b| {
        let values: Vec<f64> = (0..2000).map(|i| (i % 101) as f64).collect();
        b.iter(|| DecileHistogram::from_values(&values))
    });
    group.finish();
}

fn bench_profile_merge(c: &mut Criterion) {
    let images = profile_images(5);
    let mut group = c.benchmark_group("profile");
    group.sample_size(20);
    group.bench_function("merge-5-runs", |b| {
        b.iter(|| merge::intersect_and_sum(&images))
    });
    group.bench_function("format-round-trip", |b| {
        b.iter(|| {
            let text = vp_profile::format::to_text(&images[0]);
            vp_profile::format::from_text(&text).unwrap().len()
        })
    });
    group.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let w = Workload::new(WorkloadKind::Compress);
    let program = w.program(&InputSet::train(0));
    let mut rec = TraceRecorder::new();
    let instructions = run(&program, &mut rec, RunLimits::default())
        .unwrap()
        .instructions();
    let events = rec.into_events();
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &events).unwrap();

    let mut group = c.benchmark_group("trace-io");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instructions));
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(bytes.len());
            write_trace(&mut out, &events).unwrap();
            out.len()
        })
    });
    group.bench_function("read", |b| {
        b.iter(|| read_trace(bytes.as_slice()).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_metrics, bench_profile_merge, bench_trace_io);
criterion_main!(benches);
