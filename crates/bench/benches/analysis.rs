//! Micro-benchmarks for the analysis-side components that run over whole
//! profile vectors and traces: the Section 4 metrics, decile histogram
//! construction, profile-image merging and trace serialisation.

use provp_bench::micro::Group;
use vp_profile::{merge, ProfileCollector};
use vp_sim::record::{read_trace, write_trace, TraceRecorder};
use vp_sim::{run, RunLimits};
use vp_stats::metrics::{average_distance, max_distance};
use vp_stats::DecileHistogram;
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn profile_images(n: u32) -> Vec<vp_profile::ProfileImage> {
    let w = Workload::new(WorkloadKind::Gcc);
    InputSet::train_set(n)
        .iter()
        .map(|input| {
            let mut c = ProfileCollector::new("bench");
            run(&w.program(input), &mut c, RunLimits::default()).unwrap();
            c.into_image()
        })
        .collect()
}

fn bench_metrics() {
    // 5 runs x 2000 coordinates, the realistic Section 4 shape.
    let vectors: Vec<Vec<f64>> = (0..5)
        .map(|r| {
            (0..2000)
                .map(|i| ((i * 37 + r * 11) % 101) as f64)
                .collect()
        })
        .collect();
    let mut group = Group::new("stats").samples(30);
    group.bench("max-distance", || max_distance(&vectors));
    group.bench("average-distance", || average_distance(&vectors));
    let values: Vec<f64> = (0..2000).map(|i| (i % 101) as f64).collect();
    group.bench("decile-histogram", || DecileHistogram::from_values(&values));
}

fn bench_profile_merge() {
    let images = profile_images(5);
    let mut group = Group::new("profile").samples(20);
    group.bench("merge-5-runs", || merge::intersect_and_sum(&images));
    group.bench("format-round-trip", || {
        let text = vp_profile::format::to_text(&images[0]);
        vp_profile::format::from_text(&text).unwrap().len()
    });
}

fn bench_trace_io() {
    let w = Workload::new(WorkloadKind::Compress);
    let program = w.program(&InputSet::train(0));
    let mut rec = TraceRecorder::new();
    let instructions = run(&program, &mut rec, RunLimits::default())
        .unwrap()
        .instructions();
    let events = rec.into_events();
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &events).unwrap();
    println!(
        "trace-io: {instructions} events, {} bytes on disk",
        bytes.len()
    );

    let mut group = Group::new("trace-io").samples(10);
    group.bench("write", || {
        let mut out = Vec::with_capacity(bytes.len());
        write_trace(&mut out, &events).unwrap();
        out.len()
    });
    group.bench("read", || read_trace(bytes.as_slice()).unwrap().len());
}

fn main() {
    bench_metrics();
    bench_profile_merge();
    bench_trace_io();
}
