//! Shared command-line argument normalisation for every bench binary.
//!
//! All binaries in this crate document their flags in `--flag=VALUE`
//! form, but shells and CI templates often pass `--flag VALUE`. Instead
//! of every binary hand-rolling the dual-form loop (as `fuzz-sim` once
//! did), [`normalize`] rewrites the space-separated form into the `=`
//! form up front; the per-binary parsers then match on `strip_prefix`
//! exactly as before.
//!
//! The normaliser needs to know which flags are boolean *switches*
//! (`--metrics-table`): a switch never consumes the following argument.
//! Every other `--flag` without an `=` takes the next argument as its
//! value — and refuses a value that itself looks like a flag, so
//! `--corpus --metrics-out=x` reports a missing value instead of
//! silently swallowing the next flag.

/// Rewrites `--flag VALUE` pairs into `--flag=VALUE`, leaving
/// `--flag=VALUE`, switches listed in `switches`, and positional
/// arguments untouched.
///
/// # Errors
///
/// Returns a human-readable message when a non-switch `--flag` has no
/// following value (or the following argument is itself a flag).
pub fn normalize(
    args: impl IntoIterator<Item = String>,
    switches: &[&str],
) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let takes_value = arg.starts_with("--")
            && arg.len() > 2
            && !arg.contains('=')
            && !switches.contains(&arg.as_str());
        if !takes_value {
            out.push(arg);
            continue;
        }
        match args.next() {
            Some(value) if !value.starts_with("--") => out.push(format!("{arg}={value}")),
            _ => return Err(format!("flag `{arg}` is missing a value")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(args: &[&str], switches: &[&str]) -> Result<Vec<String>, String> {
        normalize(args.iter().map(|s| (*s).to_owned()), switches)
    }

    #[test]
    fn space_form_becomes_equals_form() {
        let out = norm(
            &[
                "--jobs",
                "4",
                "--metrics-table",
                "--trace-cache=/tmp/t",
                "pos",
            ],
            &["--metrics-table"],
        )
        .unwrap();
        assert_eq!(
            out,
            ["--jobs=4", "--metrics-table", "--trace-cache=/tmp/t", "pos"]
        );
    }

    #[test]
    fn missing_values_are_rejected() {
        assert!(norm(&["--jobs"], &[]).is_err());
        // A flag is not a value for the preceding flag.
        assert!(norm(&["--jobs", "--metrics-table"], &["--metrics-table"]).is_err());
    }

    #[test]
    fn equals_form_and_positionals_pass_through() {
        let out = norm(&["--jobs=2", "--", "-x", "plain"], &[]).unwrap();
        assert_eq!(out, ["--jobs=2", "--", "-x", "plain"]);
    }
}
