#![warn(missing_docs)]

//! # provp-bench — reproduction binaries and micro-benchmarks
//!
//! One `repro-*` binary per table/figure of the paper (run with
//! `cargo run --release -p provp-bench --bin repro-table-5-2`), a
//! `repro-all` binary that regenerates the whole evaluation in one pass,
//! `ablation-*` binaries for the extension studies, the `critical-path`
//! and `store-values` analyses, the `workload-report` /
//! `profile-workload` / `annotate-workload` utilities, and dependency-free
//! micro-benchmarks (see [`micro`]) for the performance-critical
//! components.
//!
//! All experiment binaries accept:
//!
//! ```text
//! --workloads=gcc,go,swim    subset of workloads (default: the paper's
//!                            nine; `swim`/`tomcatv`/`su2cor`/`hydro2d`
//!                            are opt-in extras)
//! --train-runs=N             training inputs per workload (default: 5)
//! --jobs=N                   worker threads for the experiment grid
//!                            (default: 1; output is byte-identical at
//!                            any job count)
//! --trace-cache=DIR          spill captured simulation traces to DIR and
//!                            reuse them on later runs
//! --metrics-out=FILE         write a JSON run manifest (phase wall times,
//!                            cache and predictor counters, throughput,
//!                            peak RSS) to FILE after the run
//! --metrics-table            print the same report human-readably to
//!                            stderr
//! ```
//!
//! With neither metrics flag set, the observability layer stays passive
//! and stdout is byte-identical to an uninstrumented run. Diagnostics on
//! stderr are level-filtered via `PROVP_LOG=error|warn|info|debug`
//! (default `warn`).

pub mod micro;

use std::path::PathBuf;
use std::time::Instant;

use provp_core::Suite;
use vp_obs::{obs_error, RunManifest};
use vp_workloads::WorkloadKind;

/// Options shared by every reproduction binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workloads to run.
    pub kinds: Vec<WorkloadKind>,
    /// Training runs per workload.
    pub train_runs: u32,
    /// Worker threads for the experiment grid (1 = serial).
    pub jobs: usize,
    /// On-disk trace cache directory, if any.
    pub trace_cache: Option<PathBuf>,
    /// Where to write the JSON run manifest, if anywhere.
    pub metrics_out: Option<PathBuf>,
    /// Whether to print the human-readable metrics report to stderr.
    pub metrics_table: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            kinds: WorkloadKind::ALL.to_vec(),
            train_runs: 5,
            jobs: 1,
            trace_cache: None,
            metrics_out: None,
            metrics_table: false,
        }
    }
}

impl Options {
    /// Parses command-line arguments (see the crate docs for the syntax).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or workload
    /// names.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        for arg in args {
            if let Some(list) = arg.strip_prefix("--workloads=") {
                opts.kinds = list
                    .split(',')
                    .map(|name| {
                        WorkloadKind::from_name(name.trim())
                            .ok_or_else(|| format!("unknown workload `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
            } else if let Some(n) = arg.strip_prefix("--train-runs=") {
                opts.train_runs = n
                    .parse()
                    .map_err(|_| format!("bad --train-runs value `{n}`"))?;
            } else if let Some(n) = arg.strip_prefix("--jobs=") {
                opts.jobs = match n {
                    "auto" => provp_core::exec::default_jobs(),
                    n => n
                        .parse()
                        .ok()
                        .filter(|&j| j >= 1)
                        .ok_or_else(|| format!("bad --jobs value `{n}` (want >= 1 or auto)"))?,
                };
            } else if let Some(dir) = arg.strip_prefix("--trace-cache=") {
                if dir.is_empty() {
                    return Err("empty --trace-cache path".to_owned());
                }
                opts.trace_cache = Some(PathBuf::from(dir));
            } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
                if path.is_empty() {
                    return Err("empty --metrics-out path".to_owned());
                }
                opts.metrics_out = Some(PathBuf::from(path));
            } else if arg == "--metrics-table" {
                opts.metrics_table = true;
            } else {
                return Err(format!(
                    "unknown argument `{arg}` (try --workloads=, --train-runs=, \
                     --jobs=, --trace-cache=, --metrics-out=, --metrics-table)"
                ));
            }
        }
        Ok(opts)
    }

    /// Parses the process's real arguments, exiting with a usage message on
    /// error.
    #[must_use]
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                obs_error!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Builds the experiment suite for these options.
    #[must_use]
    pub fn suite(&self) -> Suite {
        let suite = Suite::with_train_runs(self.train_runs).with_jobs(self.jobs);
        match &self.trace_cache {
            Some(dir) => suite.with_trace_dir(dir.clone()),
            None => suite,
        }
    }
}

/// Runs one experiment binary end to end: parses the process arguments,
/// builds the suite, executes `body` under a root span named after the
/// binary, and — when `--metrics-out=`/`--metrics-table` ask for it —
/// folds the suite's trace-store statistics into the metric registry and
/// emits the run manifest.
///
/// With neither metrics flag set this adds nothing observable: no files,
/// no stderr, and stdout exactly as `body` printed it.
pub fn run_experiment(bin: &'static str, body: impl FnOnce(&Options, &Suite)) {
    let opts = Options::from_env();
    run_experiment_with(bin, &opts, body);
}

/// Like [`run_experiment`], but with pre-parsed options (for binaries that
/// layer extra argument handling on top of [`Options`]).
pub fn run_experiment_with(bin: &'static str, opts: &Options, body: impl FnOnce(&Options, &Suite)) {
    let started = Instant::now();
    let suite = opts.suite();
    {
        let _root = vp_obs::span(bin);
        body(opts, &suite);
    }
    emit_metrics(bin, opts, &suite, started);
}

/// Publishes the suite's trace-store counters into the global registry and
/// writes/prints the manifest as requested. A no-op without metrics flags.
fn emit_metrics(bin: &str, opts: &Options, suite: &Suite, started: Instant) {
    if opts.metrics_out.is_none() && !opts.metrics_table {
        return;
    }
    publish_trace_store_stats(suite);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let manifest = RunManifest::from_snapshot(
        bin,
        std::env::args().skip(1).collect(),
        wall_ms,
        &vp_obs::global().snapshot(),
    );
    if opts.metrics_table {
        vp_obs::print_table(&manifest);
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = vp_obs::write_manifest(&manifest, path) {
            obs_error!("failed to write manifest to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Folds one suite's cumulative [`provp_core::TraceStoreStats`] into the
/// metric registry under the `trace_store.*` keys the manifest's derived
/// hit rate consumes.
fn publish_trace_store_stats(suite: &Suite) {
    let stats = suite.trace_stats();
    vp_obs::counter("trace_store.requests").add(stats.requests);
    vp_obs::counter("trace_store.memory_hits").add(stats.memory_hits);
    vp_obs::counter("trace_store.misses").add(stats.misses);
    vp_obs::counter("trace_store.disk_hits").add(stats.disk_hits);
    vp_obs::counter("trace_store.captures").add(stats.captures);
    vp_obs::counter("trace_store.evictions").add(stats.evictions);
    vp_obs::counter("trace_store.spills").add(stats.spills);
    vp_obs::counter("trace_store.spill_failures").add(stats.spill_failures);
    vp_obs::counter("trace_store.dedup_waits").add(stats.dedup_waits);
    vp_obs::gauge("trace_store.resident").set_max(stats.resident);
    vp_obs::gauge("trace_store.resident_bytes").set_max(stats.resident_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_all_workloads() {
        let o = Options::default();
        assert_eq!(o.kinds.len(), 9);
        assert_eq!(o.train_runs, 5);
    }

    #[test]
    fn parses_flags() {
        let o = Options::parse([
            "--workloads=gcc,mgrid".into(),
            "--train-runs=2".into(),
            "--jobs=4".into(),
            "--trace-cache=results/traces".into(),
        ])
        .unwrap();
        assert_eq!(o.kinds, vec![WorkloadKind::Gcc, WorkloadKind::Mgrid]);
        assert_eq!(o.train_runs, 2);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.trace_cache.as_deref(), Some("results/traces".as_ref()));
    }

    #[test]
    fn jobs_auto_picks_at_least_one_worker() {
        let o = Options::parse(["--jobs=auto".into()]).unwrap();
        assert!(o.jobs >= 1);
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(Options::parse(["--workloads=nope".into()]).is_err());
        assert!(Options::parse(["--frobnicate".into()]).is_err());
        assert!(Options::parse(["--train-runs=x".into()]).is_err());
        assert!(Options::parse(["--jobs=0".into()]).is_err());
        assert!(Options::parse(["--jobs=lots".into()]).is_err());
        assert!(Options::parse(["--trace-cache=".into()]).is_err());
    }
}
