#![warn(missing_docs)]

//! # provp-bench — reproduction binaries and micro-benchmarks
//!
//! One `repro-*` binary per table/figure of the paper (run with
//! `cargo run --release -p provp-bench --bin repro-table-5-2`), a
//! `repro-all` binary that regenerates the whole evaluation in one pass,
//! `ablation-*` binaries for the extension studies, the `critical-path`
//! and `store-values` analyses, the `workload-report` /
//! `profile-workload` / `annotate-workload` utilities, and dependency-free
//! micro-benchmarks (see [`micro`]) for the performance-critical
//! components.
//!
//! All experiment binaries accept:
//!
//! ```text
//! --workloads=gcc,go,swim    subset of workloads (default: the paper's
//!                            nine; `swim`/`tomcatv`/`su2cor`/`hydro2d`
//!                            are opt-in extras)
//! --train-runs=N             training inputs per workload (default: 5)
//! --jobs=N                   worker threads for the experiment grid
//!                            (default: 1; output is byte-identical at
//!                            any job count)
//! --trace-cache=DIR          spill captured simulation traces to DIR and
//!                            reuse them on later runs
//! ```

pub mod micro;

use std::path::PathBuf;

use provp_core::Suite;
use vp_workloads::WorkloadKind;

/// Options shared by every reproduction binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workloads to run.
    pub kinds: Vec<WorkloadKind>,
    /// Training runs per workload.
    pub train_runs: u32,
    /// Worker threads for the experiment grid (1 = serial).
    pub jobs: usize,
    /// On-disk trace cache directory, if any.
    pub trace_cache: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            kinds: WorkloadKind::ALL.to_vec(),
            train_runs: 5,
            jobs: 1,
            trace_cache: None,
        }
    }
}

impl Options {
    /// Parses command-line arguments (see the crate docs for the syntax).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or workload
    /// names.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        for arg in args {
            if let Some(list) = arg.strip_prefix("--workloads=") {
                opts.kinds = list
                    .split(',')
                    .map(|name| {
                        WorkloadKind::from_name(name.trim())
                            .ok_or_else(|| format!("unknown workload `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
            } else if let Some(n) = arg.strip_prefix("--train-runs=") {
                opts.train_runs = n
                    .parse()
                    .map_err(|_| format!("bad --train-runs value `{n}`"))?;
            } else if let Some(n) = arg.strip_prefix("--jobs=") {
                opts.jobs = match n {
                    "auto" => provp_core::exec::default_jobs(),
                    n => n
                        .parse()
                        .ok()
                        .filter(|&j| j >= 1)
                        .ok_or_else(|| format!("bad --jobs value `{n}` (want >= 1 or auto)"))?,
                };
            } else if let Some(dir) = arg.strip_prefix("--trace-cache=") {
                if dir.is_empty() {
                    return Err("empty --trace-cache path".to_owned());
                }
                opts.trace_cache = Some(PathBuf::from(dir));
            } else {
                return Err(format!(
                    "unknown argument `{arg}` (try --workloads=, --train-runs=, \
                     --jobs=, --trace-cache=)"
                ));
            }
        }
        Ok(opts)
    }

    /// Parses the process's real arguments, exiting with a usage message on
    /// error.
    #[must_use]
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Builds the experiment suite for these options.
    #[must_use]
    pub fn suite(&self) -> Suite {
        let suite = Suite::with_train_runs(self.train_runs).with_jobs(self.jobs);
        match &self.trace_cache {
            Some(dir) => suite.with_trace_dir(dir.clone()),
            None => suite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_all_workloads() {
        let o = Options::default();
        assert_eq!(o.kinds.len(), 9);
        assert_eq!(o.train_runs, 5);
    }

    #[test]
    fn parses_flags() {
        let o = Options::parse([
            "--workloads=gcc,mgrid".into(),
            "--train-runs=2".into(),
            "--jobs=4".into(),
            "--trace-cache=results/traces".into(),
        ])
        .unwrap();
        assert_eq!(o.kinds, vec![WorkloadKind::Gcc, WorkloadKind::Mgrid]);
        assert_eq!(o.train_runs, 2);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.trace_cache.as_deref(), Some("results/traces".as_ref()));
    }

    #[test]
    fn jobs_auto_picks_at_least_one_worker() {
        let o = Options::parse(["--jobs=auto".into()]).unwrap();
        assert!(o.jobs >= 1);
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(Options::parse(["--workloads=nope".into()]).is_err());
        assert!(Options::parse(["--frobnicate".into()]).is_err());
        assert!(Options::parse(["--train-runs=x".into()]).is_err());
        assert!(Options::parse(["--jobs=0".into()]).is_err());
        assert!(Options::parse(["--jobs=lots".into()]).is_err());
        assert!(Options::parse(["--trace-cache=".into()]).is_err());
    }
}
