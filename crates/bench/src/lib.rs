#![warn(missing_docs)]

//! # provp-bench — reproduction binaries and micro-benchmarks
//!
//! One `repro-*` binary per table/figure of the paper (run with
//! `cargo run --release -p provp-bench --bin repro-table-5-2`), a
//! `repro-all` binary that regenerates the whole evaluation in one pass,
//! `ablation-*` binaries for the extension studies, the `critical-path`
//! and `store-values` analyses, the `workload-report` /
//! `profile-workload` / `annotate-workload` utilities, and dependency-free
//! micro-benchmarks (see [`micro`]) for the performance-critical
//! components.
//!
//! All experiment binaries accept:
//!
//! ```text
//! --workloads=gcc,go,swim    subset of workloads (default: the paper's
//!                            nine; `swim`/`tomcatv`/`su2cor`/`hydro2d`
//!                            are opt-in extras)
//! --train-runs=N             training inputs per workload (default: 5)
//! --jobs=N                   worker threads for the experiment grid
//!                            (default: 1; output is byte-identical at
//!                            any job count)
//! --stream                   run predictor sweeps in streaming mode: the
//!                            reference simulation feeds the replay
//!                            kernel through a bounded block channel and
//!                            the trace is never materialised (peak RSS
//!                            independent of trace length; results
//!                            byte-identical to batch)
//! --block-pool=N             block buffers circulating in the streaming
//!                            channel (default 8, min 2); implies nothing
//!                            without --stream
//! --trace-cache=DIR          spill captured simulation traces to DIR and
//!                            reuse them on later runs
//! --metrics-out=FILE         write a JSON run manifest (phase wall times,
//!                            cache and predictor counters, throughput,
//!                            peak RSS) to FILE after the run
//! --metrics-table            print the same report human-readably to
//!                            stderr
//! --trace-out=FILE           record span begin/end and pipeline events
//!                            into a bounded in-memory ring and write a
//!                            Chrome `trace_event` JSON file (open in
//!                            Perfetto or chrome://tracing) after the run
//! --sample-ms=N              snapshot every counter/gauge every N ms on
//!                            a background thread and embed the series as
//!                            the `samples` array of a
//!                            `provp-run-manifest/v2` manifest
//! --attribution              classify every predictor misprediction by
//!                            per-PC cause and embed the result as the
//!                            `attribution` array of a
//!                            `provp-run-manifest/v3` manifest (see
//!                            OBSERVABILITY.md)
//! --attribution-top=N        PCs exported per attributed run, hottest
//!                            mispredictors first (default 20; 0 = all)
//! --profile-hz=N             sample every thread's open-span stack N
//!                            times per second on a background profiler
//!                            thread and embed the folded result as the
//!                            `profile` section of a
//!                            `provp-run-manifest/v4` manifest
//! --profile-out=FILE         write the collapsed-stack samples to FILE
//!                            (`a;b;c <count>` lines) plus a rendered
//!                            flamegraph SVG next to it (FILE with a
//!                            `.svg` extension); requires --profile-hz=
//! ```
//!
//! Every flag also accepts the space-separated form (`--jobs 4`); see
//! [`args::normalize`].
//!
//! With none of the observability flags set, the layer stays passive
//! and stdout is byte-identical to an uninstrumented run — the event
//! ring, sampler and exporters only write to the requested files and to
//! stderr, never stdout. Diagnostics on stderr are level-filtered via
//! `PROVP_LOG=error|warn|info|debug` (default `warn`).

pub mod args;
pub mod micro;

use std::path::PathBuf;
use std::time::Instant;

use provp_core::Suite;
use vp_obs::{obs_error, RunManifest};
use vp_workloads::WorkloadKind;

/// Options shared by every reproduction binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workloads to run.
    pub kinds: Vec<WorkloadKind>,
    /// Training runs per workload.
    pub train_runs: u32,
    /// Worker threads for the experiment grid (1 = serial).
    pub jobs: usize,
    /// Whether predictor sweeps run in streaming (bounded-memory) mode.
    pub stream: bool,
    /// Block-pool size for the streaming channel (min 2).
    pub block_pool: usize,
    /// On-disk trace cache directory, if any.
    pub trace_cache: Option<PathBuf>,
    /// Where to write the JSON run manifest, if anywhere.
    pub metrics_out: Option<PathBuf>,
    /// Whether to print the human-readable metrics report to stderr.
    pub metrics_table: bool,
    /// Where to write the Chrome `trace_event` JSON document, if
    /// anywhere (also enables the in-memory event ring).
    pub trace_out: Option<PathBuf>,
    /// Mid-run registry sampling cadence in milliseconds, if sampling
    /// was requested (promotes the manifest to schema v2).
    pub sample_ms: Option<u64>,
    /// Whether to collect per-PC misprediction attribution (promotes the
    /// manifest to schema v3). Observation-only: stdout stays
    /// byte-identical either way.
    pub attribution: bool,
    /// PCs exported per attributed run (0 = all).
    pub attribution_top: usize,
    /// Span-stack sampling cadence in Hz, if profiling was requested
    /// (promotes the manifest to schema v4). Observation-only: stdout
    /// stays byte-identical either way.
    pub profile_hz: Option<u32>,
    /// Where to write the collapsed-stack profile (and, next to it, the
    /// flamegraph SVG), if anywhere. Requires `profile_hz`.
    pub profile_out: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            kinds: WorkloadKind::ALL.to_vec(),
            train_runs: 5,
            jobs: 1,
            stream: false,
            block_pool: provp_core::replay::stream::DEFAULT_BLOCK_POOL,
            trace_cache: None,
            metrics_out: None,
            metrics_table: false,
            trace_out: None,
            sample_ms: None,
            attribution: false,
            attribution_top: 20,
            profile_hz: None,
            profile_out: None,
        }
    }
}

impl Options {
    /// Parses command-line arguments (see the crate docs for the syntax).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or workload
    /// names.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        for arg in args::normalize(args, &["--metrics-table", "--attribution", "--stream"])? {
            if let Some(list) = arg.strip_prefix("--workloads=") {
                opts.kinds = list
                    .split(',')
                    .map(|name| {
                        WorkloadKind::from_name(name.trim())
                            .ok_or_else(|| format!("unknown workload `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
            } else if let Some(n) = arg.strip_prefix("--train-runs=") {
                opts.train_runs = n
                    .parse()
                    .map_err(|_| format!("bad --train-runs value `{n}`"))?;
            } else if let Some(n) = arg.strip_prefix("--jobs=") {
                opts.jobs = match n {
                    "auto" => provp_core::exec::default_jobs(),
                    n => n
                        .parse()
                        .ok()
                        .filter(|&j| j >= 1)
                        .ok_or_else(|| format!("bad --jobs value `{n}` (want >= 1 or auto)"))?,
                };
            } else if arg == "--stream" {
                opts.stream = true;
            } else if let Some(n) = arg.strip_prefix("--block-pool=") {
                opts.block_pool = n
                    .parse()
                    .ok()
                    .filter(|&b| b >= provp_core::replay::stream::MIN_BLOCK_POOL)
                    .ok_or_else(|| {
                        format!(
                            "bad --block-pool value `{n}` (want >= {})",
                            provp_core::replay::stream::MIN_BLOCK_POOL
                        )
                    })?;
            } else if let Some(dir) = arg.strip_prefix("--trace-cache=") {
                if dir.is_empty() {
                    return Err("empty --trace-cache path".to_owned());
                }
                opts.trace_cache = Some(PathBuf::from(dir));
            } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
                if path.is_empty() {
                    return Err("empty --metrics-out path".to_owned());
                }
                opts.metrics_out = Some(PathBuf::from(path));
            } else if arg == "--metrics-table" {
                opts.metrics_table = true;
            } else if let Some(path) = arg.strip_prefix("--trace-out=") {
                if path.is_empty() {
                    return Err("empty --trace-out path".to_owned());
                }
                opts.trace_out = Some(PathBuf::from(path));
            } else if let Some(n) = arg.strip_prefix("--sample-ms=") {
                opts.sample_ms = Some(
                    n.parse()
                        .ok()
                        .filter(|&ms| ms >= 1)
                        .ok_or_else(|| format!("bad --sample-ms value `{n}` (want >= 1)"))?,
                );
            } else if arg == "--attribution" {
                opts.attribution = true;
            } else if let Some(n) = arg.strip_prefix("--attribution-top=") {
                opts.attribution_top = n.parse().map_err(|_| {
                    format!("bad --attribution-top value `{n}` (want an integer; 0 = all)")
                })?;
            } else if let Some(n) = arg.strip_prefix("--profile-hz=") {
                opts.profile_hz = Some(
                    n.parse()
                        .ok()
                        .filter(|&hz| hz >= 1)
                        .ok_or_else(|| format!("bad --profile-hz value `{n}` (want >= 1)"))?,
                );
            } else if let Some(path) = arg.strip_prefix("--profile-out=") {
                if path.is_empty() {
                    return Err("empty --profile-out path".to_owned());
                }
                opts.profile_out = Some(PathBuf::from(path));
            } else {
                return Err(format!(
                    "unknown argument `{arg}` (try --workloads=, --train-runs=, \
                     --jobs=, --stream, --block-pool=, --trace-cache=, \
                     --metrics-out=, --metrics-table, --trace-out=, --sample-ms=, \
                     --attribution, --attribution-top=, --profile-hz=, \
                     --profile-out=)"
                ));
            }
        }
        if opts.profile_out.is_some() && opts.profile_hz.is_none() {
            return Err(
                "--profile-out requires --profile-hz= (nothing would be sampled)".to_owned(),
            );
        }
        Ok(opts)
    }

    /// Parses the process's real arguments, exiting with a usage message on
    /// error.
    #[must_use]
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                obs_error!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Builds the experiment suite for these options.
    #[must_use]
    pub fn suite(&self) -> Suite {
        let mut suite = Suite::with_train_runs(self.train_runs).with_jobs(self.jobs);
        if self.stream {
            suite = suite.with_streaming(self.block_pool);
        }
        match &self.trace_cache {
            Some(dir) => suite.with_trace_dir(dir.clone()),
            None => suite,
        }
    }
}

/// Runs one experiment binary end to end: parses the process arguments,
/// builds the suite, executes `body` under a root span named after the
/// binary, and — when the observability flags ask for it — folds the
/// suite's trace-store statistics into the metric registry, records the
/// event stream, samples the registry mid-run and emits the run
/// manifest and Chrome trace.
///
/// With no observability flags set this adds nothing observable: no
/// files, no stderr, and stdout exactly as `body` printed it.
pub fn run_experiment(bin: &'static str, body: impl FnOnce(&Options, &Suite)) {
    let opts = Options::from_env();
    run_experiment_with(bin, &opts, body);
}

/// Like [`run_experiment`], but with pre-parsed options (for binaries that
/// layer extra argument handling on top of [`Options`]).
pub fn run_experiment_with(bin: &'static str, opts: &Options, body: impl FnOnce(&Options, &Suite)) {
    let started = Instant::now();
    if opts.trace_out.is_some() {
        vp_obs::events::enable();
    }
    if opts.attribution {
        provp_core::attribution::enable(opts.attribution_top);
    }
    let suite = opts.suite();
    // The sampler hook republishes the trace store's lock-consistent
    // counter block right before every snapshot (on the sampler thread),
    // so invariants like `memory_hits + misses == requests` hold in
    // every sample, not just at end of run. Publishing is idempotent
    // (`record_absolute`), so the hook and the end-of-run publish never
    // double count.
    let sampler = opts.sample_ms.map(|ms| {
        let store = suite.trace_store();
        vp_obs::Sampler::start_with_hook(
            std::time::Duration::from_millis(ms),
            vp_obs::global(),
            move || publish_trace_store_stats(&store.stats()),
        )
    });
    // The profiler must arm before the root span opens: span-stack
    // mirroring only covers spans pushed after arming, so starting it
    // here makes every sample a full `bin/...` path.
    let profiler = opts.profile_hz.map(vp_obs::Profiler::start);
    vp_obs::events::instant("experiment.start", 0);
    {
        let _root = vp_obs::span(bin);
        body(opts, &suite);
    }
    vp_obs::events::instant("experiment.finish", 0);
    let profile = profiler.map(vp_obs::Profiler::stop);
    let samples = sampler.map_or_else(Vec::new, vp_obs::Sampler::stop);
    // Drain + export the event stream *before* the manifest snapshot so
    // `trace.dropped_events` lands in the manifest's counters (the
    // profiler's stop already published `profiler.samples` /
    // `profiler.dropped_samples` the same way).
    emit_trace(opts);
    emit_profile(opts, profile.as_ref());
    emit_metrics(bin, opts, &suite, started, samples, profile);
}

/// Drains the global event stream and writes the Chrome trace when
/// `--trace-out=` asked for one. A no-op otherwise.
fn emit_trace(opts: &Options) {
    let Some(path) = &opts.trace_out else { return };
    let (events, dropped) = vp_obs::events::drain_global();
    vp_obs::counter("trace.dropped_events").record_absolute(dropped);
    if dropped > 0 {
        vp_obs::obs_warn!(
            "event ring dropped {dropped} events (oldest first); the Chrome \
             trace at {} is truncated",
            path.display()
        );
    }
    if let Err(e) = vp_obs::write_chrome_trace(&events, dropped, path) {
        obs_error!("failed to write Chrome trace to {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Hot stacks exported into the manifest's `profile` section.
const PROFILE_TOP_K: usize = 20;

/// Writes the collapsed-stack profile and its flamegraph SVG when
/// `--profile-out=` asked for them. A no-op otherwise.
fn emit_profile(opts: &Options, profile: Option<&vp_obs::Profile>) {
    let Some(path) = &opts.profile_out else {
        return;
    };
    let Some(profile) = profile else { return };
    if let Err(e) = vp_obs::export::write_atomically(path, &profile.folded_text()) {
        obs_error!("failed to write folded profile to {}: {e}", path.display());
        std::process::exit(1);
    }
    let svg_path = path.with_extension("svg");
    let title = format!(
        "{} @ {} Hz ({} samples, {} threads)",
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "profile".to_owned()),
        profile.hz,
        profile.samples,
        profile.threads,
    );
    let svg = vp_obs::flamegraph_svg(&profile.folded, &title);
    if let Err(e) = vp_obs::export::write_atomically(&svg_path, &svg) {
        obs_error!("failed to write flamegraph to {}: {e}", svg_path.display());
        std::process::exit(1);
    }
}

/// Publishes the suite's trace-store counters into the global registry and
/// writes/prints the manifest as requested. A no-op without metrics flags.
fn emit_metrics(
    bin: &str,
    opts: &Options,
    suite: &Suite,
    started: Instant,
    samples: Vec<vp_obs::Sample>,
    profile: Option<vp_obs::Profile>,
) {
    let attribution = provp_core::attribution::drain();
    if opts.metrics_out.is_none() && !opts.metrics_table {
        if !samples.is_empty() {
            vp_obs::obs_warn!(
                "--sample-ms collected {} samples but neither --metrics-out= nor \
                 --metrics-table was given; the series is discarded",
                samples.len()
            );
        }
        if !attribution.is_empty() {
            vp_obs::obs_warn!(
                "--attribution collected {} runs but neither --metrics-out= nor \
                 --metrics-table was given; the tables are discarded",
                attribution.len()
            );
        }
        if profile.is_some() && opts.profile_out.is_none() {
            vp_obs::obs_warn!(
                "--profile-hz sampled the run but none of --profile-out=, \
                 --metrics-out= or --metrics-table was given; the profile is \
                 discarded"
            );
        }
        return;
    }
    publish_trace_store_stats(&suite.trace_stats());
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let manifest = RunManifest::from_snapshot(
        bin,
        std::env::args().skip(1).collect(),
        wall_ms,
        &vp_obs::global().snapshot(),
    )
    .with_samples(samples)
    .with_attribution(attribution)
    .with_profile(profile.map(|p| p.to_section(PROFILE_TOP_K)));
    if opts.metrics_table {
        vp_obs::print_table(&manifest);
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = vp_obs::write_manifest(&manifest, path) {
            obs_error!("failed to write manifest to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Publishes one trace store's cumulative [`provp_core::TraceStoreStats`]
/// block into the metric registry under the `trace_store.*` keys the
/// manifest's derived hit rate consumes.
///
/// Publishing is *idempotent* (`record_absolute` / `set_max` raise, never
/// accumulate): the stats block is already cumulative, and both the
/// sampler hook and the end-of-run exporter call this with snapshots of
/// the same monotone totals.
fn publish_trace_store_stats(stats: &provp_core::TraceStoreStats) {
    let c = |key: &'static str, v: u64| vp_obs::counter(key).record_absolute(v);
    c("trace_store.requests", stats.requests);
    c("trace_store.memory_hits", stats.memory_hits);
    c("trace_store.misses", stats.misses);
    c("trace_store.disk_hits", stats.disk_hits);
    c("trace_store.captures", stats.captures);
    c("trace_store.evictions", stats.evictions);
    c("trace_store.spills", stats.spills);
    c("trace_store.spill_failures", stats.spill_failures);
    c("trace_store.dedup_waits", stats.dedup_waits);
    vp_obs::gauge("trace_store.resident").set_max(stats.resident);
    vp_obs::gauge("trace_store.resident_bytes").set_max(stats.resident_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_all_workloads() {
        let o = Options::default();
        assert_eq!(o.kinds.len(), 9);
        assert_eq!(o.train_runs, 5);
    }

    #[test]
    fn parses_flags() {
        let o = Options::parse([
            "--workloads=gcc,mgrid".into(),
            "--train-runs=2".into(),
            "--jobs=4".into(),
            "--trace-cache=results/traces".into(),
        ])
        .unwrap();
        assert_eq!(o.kinds, vec![WorkloadKind::Gcc, WorkloadKind::Mgrid]);
        assert_eq!(o.train_runs, 2);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.trace_cache.as_deref(), Some("results/traces".as_ref()));
    }

    #[test]
    fn jobs_auto_picks_at_least_one_worker() {
        let o = Options::parse(["--jobs=auto".into()]).unwrap();
        assert!(o.jobs >= 1);
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(Options::parse(["--workloads=nope".into()]).is_err());
        assert!(Options::parse(["--frobnicate".into()]).is_err());
        assert!(Options::parse(["--train-runs=x".into()]).is_err());
        assert!(Options::parse(["--jobs=0".into()]).is_err());
        assert!(Options::parse(["--jobs=lots".into()]).is_err());
        assert!(Options::parse(["--trace-cache=".into()]).is_err());
        assert!(Options::parse(["--trace-out=".into()]).is_err());
        assert!(Options::parse(["--sample-ms=0".into()]).is_err());
        assert!(Options::parse(["--sample-ms=soon".into()]).is_err());
    }

    #[test]
    fn parses_streaming_flags() {
        let o = Options::parse([]).unwrap();
        assert!(!o.stream);
        assert_eq!(o.block_pool, provp_core::replay::stream::DEFAULT_BLOCK_POOL);
        let o = Options::parse(["--stream".into(), "--block-pool=4".into()]).unwrap();
        assert!(o.stream);
        assert_eq!(o.block_pool, 4);
        // Space-separated value form works through the switch list.
        let o = Options::parse(["--stream".into(), "--block-pool".into(), "16".into()]).unwrap();
        assert_eq!(o.block_pool, 16);
        assert!(Options::parse(["--block-pool=1".into()]).is_err());
        assert!(Options::parse(["--block-pool=many".into()]).is_err());
    }

    #[test]
    fn parses_observability_flags() {
        let o = Options::parse(["--trace-out=t.json".into(), "--sample-ms=50".into()]).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.json".as_ref()));
        assert_eq!(o.sample_ms, Some(50));
        let o = Options::parse([]).unwrap();
        assert_eq!(o.trace_out, None);
        assert_eq!(o.sample_ms, None);
        assert!(!o.attribution);
        assert_eq!(o.attribution_top, 20);

        let o = Options::parse(["--attribution".into(), "--attribution-top=5".into()]).unwrap();
        assert!(o.attribution);
        assert_eq!(o.attribution_top, 5);
        assert!(Options::parse(["--attribution-top=few".into()]).is_err());
    }

    #[test]
    fn parses_profiler_flags() {
        let o =
            Options::parse(["--profile-hz=99".into(), "--profile-out=p.folded".into()]).unwrap();
        assert_eq!(o.profile_hz, Some(99));
        assert_eq!(o.profile_out.as_deref(), Some("p.folded".as_ref()));
        let o = Options::parse([]).unwrap();
        assert_eq!(o.profile_hz, None);
        assert_eq!(o.profile_out, None);
        // Sampling without exporting is fine: the profile still lands in
        // the manifest when metrics flags are present.
        let o = Options::parse(["--profile-hz=50".into()]).unwrap();
        assert_eq!(o.profile_hz, Some(50));

        assert!(Options::parse(["--profile-hz=0".into()]).is_err());
        assert!(Options::parse(["--profile-hz=fast".into()]).is_err());
        assert!(Options::parse(["--profile-out=".into()]).is_err());
        // --profile-out without a rate would silently sample nothing.
        assert!(Options::parse(["--profile-out=p.folded".into()]).is_err());
    }

    #[test]
    fn accepts_space_separated_flag_values() {
        let o = Options::parse([
            "--jobs".into(),
            "4".into(),
            "--metrics-table".into(),
            "--attribution".into(),
            "--workloads".into(),
            "gcc".into(),
        ])
        .unwrap();
        assert_eq!(o.jobs, 4);
        assert!(o.metrics_table);
        assert!(o.attribution);
        assert_eq!(o.kinds, vec![WorkloadKind::Gcc]);
        // A dangling value-taking flag is a usage error, not a panic.
        assert!(Options::parse(["--jobs".into()]).is_err());
    }
}
