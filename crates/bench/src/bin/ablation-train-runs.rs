//! Ablation: how many training inputs does the Section 4 stability result
//! need?

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-train-runs", |opts, _suite| {
        for &kind in &opts.kinds {
            let rows = ablations::train_runs(kind, opts.train_runs.max(2));
            println!("{}\n", ablations::render_train_runs(kind, &rows));
        }
    });
}
