//! Extension: predictability of stored values (the paper's §2.1
//! generalization to memory storage operands).

use provp_bench::run_experiment;
use provp_core::experiments::store_values;

fn main() {
    run_experiment("store-values", |opts, suite| {
        println!(
            "{}",
            store_values::run_analysis(suite, &opts.kinds).render()
        );
    });
}
