//! Extension: predictability of stored values (the paper's §2.1
//! generalization to memory storage operands).

use provp_bench::Options;
use provp_core::experiments::store_values;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!(
        "{}",
        store_values::run_analysis(&suite, &opts.kinds).render()
    );
}
