//! Reproduces Table 2.1: predictor accuracy by instruction category.

use provp_bench::run_experiment;
use provp_core::experiments::table_2_1;
use vp_workloads::WorkloadKind;

fn main() {
    run_experiment("repro-table-2-1", |opts, suite| {
        let int_kinds: Vec<WorkloadKind> =
            opts.kinds.iter().copied().filter(|k| !k.is_fp()).collect();
        let fp_kinds: Vec<WorkloadKind> =
            opts.kinds.iter().copied().filter(|k| k.is_fp()).collect();
        let table = table_2_1::run(suite, &int_kinds, &fp_kinds);
        println!("{}", table.render());
    });
}
