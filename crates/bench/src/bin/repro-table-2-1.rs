//! Reproduces Table 2.1: predictor accuracy by instruction category.

use provp_bench::Options;
use provp_core::experiments::table_2_1;
use vp_workloads::WorkloadKind;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    let int_kinds: Vec<WorkloadKind> = opts.kinds.iter().copied().filter(|k| !k.is_fp()).collect();
    let fp_kinds: Vec<WorkloadKind> = opts.kinds.iter().copied().filter(|k| k.is_fp()).collect();
    let table = table_2_1::run(&suite, &int_kinds, &fp_kinds);
    println!("{}", table.render());
}
