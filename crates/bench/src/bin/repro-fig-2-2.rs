//! Reproduces Figure 2.2: the spread of instructions by prediction accuracy.

use provp_bench::Options;
use provp_core::experiments::fig_2_2;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!("{}", fig_2_2::run(&suite, &opts.kinds).render());
}
