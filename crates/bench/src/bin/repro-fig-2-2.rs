//! Reproduces Figure 2.2: the spread of instructions by prediction accuracy.

use provp_bench::run_experiment;
use provp_core::experiments::fig_2_2;

fn main() {
    run_experiment("repro-fig-2-2", |opts, suite| {
        println!("{}", fig_2_2::run(suite, &opts.kinds).render());
    });
}
