//! Reproduces Table 5.2: ILP increase under each classification mechanism.

use provp_bench::Options;
use provp_core::experiments::table_5_2;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!("{}", table_5_2::run(&suite, &opts.kinds).render());
}
