//! Reproduces Table 5.2: ILP increase under each classification mechanism.

use provp_bench::run_experiment;
use provp_core::experiments::table_5_2;

fn main() {
    run_experiment("repro-table-5-2", |opts, suite| {
        println!("{}", table_5_2::run(suite, &opts.kinds).render());
    });
}
