//! Reproduces Figure 5.3: change in correct predictions (finite table).

use provp_bench::run_experiment;
use provp_core::experiments::finite_table::{self, Which};

fn main() {
    run_experiment("repro-fig-5-3", |opts, suite| {
        println!(
            "{}",
            finite_table::run(suite, &opts.kinds).render(Which::Correct)
        );
    });
}
