//! Reproduces Figure 5.3: change in correct predictions (finite table).

use provp_bench::Options;
use provp_core::experiments::finite_table::{self, Which};

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!(
        "{}",
        finite_table::run(&suite, &opts.kinds).render(Which::Correct)
    );
}
