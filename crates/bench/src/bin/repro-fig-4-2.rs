//! Reproduces Figure 4.2: profile similarity across inputs.

use provp_bench::Options;
use provp_core::experiments::fig_4::{self, Which};

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!(
        "{}",
        fig_4::run(&suite, &opts.kinds).render(Which::VAverage)
    );
}
