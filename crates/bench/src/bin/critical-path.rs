//! Critical-path predictability report (the paper's future-work analysis):
//! how much of each workload's dataflow critical path is value-predictable.

use provp_bench::Options;
use provp_core::experiments::critical_path;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!(
        "{}",
        critical_path::run_analysis(&suite, &opts.kinds).render()
    );
}
