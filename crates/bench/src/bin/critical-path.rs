//! Critical-path predictability report (the paper's future-work analysis):
//! how much of each workload's dataflow critical path is value-predictable.

use provp_bench::run_experiment;
use provp_core::experiments::critical_path;

fn main() {
    run_experiment("critical-path", |opts, suite| {
        println!(
            "{}",
            critical_path::run_analysis(suite, &opts.kinds).render()
        );
    });
}
