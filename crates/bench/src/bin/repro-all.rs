//! Regenerates the paper's entire evaluation section in one pass,
//! sharing profiling work across experiments.
//!
//! Before the predictor experiments run, the union of their sweep cells
//! is primed into the suite's fused matrix memo (the `sweep` phase): one
//! fused matrix pass per reference trace computes every cell that
//! classification, Table 5.1 and the finite-table figures will request,
//! so `replay.matrix_passes` stays at one per trace and the sweep's wall
//! time is attributed to a single gateable phase.
//!
//! With `--metrics-out=FILE` the run additionally writes a JSON manifest
//! whose phase table carries one `repro-all/<experiment>` row per
//! table/figure; stdout stays byte-identical either way.

use provp_bench::run_experiment;
use provp_core::experiments::{
    classification, fig_2_2, fig_2_3, fig_4, finite_table, table_2_1, table_5_1, table_5_2,
};
use vp_workloads::WorkloadKind;

fn main() {
    run_experiment("repro-all", |opts, suite| {
        let kinds = &opts.kinds;

        let int_kinds: Vec<WorkloadKind> = kinds.iter().copied().filter(|k| !k.is_fp()).collect();
        let fp_kinds: Vec<WorkloadKind> = kinds.iter().copied().filter(|k| k.is_fp()).collect();
        let t21 = {
            let _s = vp_obs::span("table_2_1");
            table_2_1::run(suite, &int_kinds, &fp_kinds)
        };
        println!("{}\n", t21.render());
        let f22 = {
            let _s = vp_obs::span("fig_2_2");
            fig_2_2::run(suite, kinds)
        };
        println!("{}\n", f22.render());
        let f23 = {
            let _s = vp_obs::span("fig_2_3");
            fig_2_3::run(suite, kinds)
        };
        println!("{}\n", f23.render());

        let fig4 = {
            let _s = vp_obs::span("fig_4");
            fig_4::run(suite, kinds)
        };
        println!("{}\n", fig4.render(fig_4::Which::VMax));
        println!("{}\n", fig4.render(fig_4::Which::VAverage));
        println!("{}\n", fig4.render(fig_4::Which::SAverage));

        {
            // Fuse the whole paper sweep — every (config, threshold) cell
            // the three predictor experiments below will ask for — into
            // one matrix replay per reference trace. The experiments then
            // hit the memo; each still publishes its own requests, so
            // counters and attribution are unchanged.
            let _s = vp_obs::span("sweep");
            let mut cells = classification::matrix_cells();
            cells.extend(table_5_1::matrix_cells());
            cells.extend(finite_table::matrix_cells());
            suite.prime_matrix(kinds, &cells);
        }

        let cls = {
            let _s = vp_obs::span("classification");
            classification::run(suite, kinds)
        };
        println!("{}\n", cls.render(classification::Which::Mispredictions));
        println!(
            "{}\n",
            cls.render(classification::Which::CorrectPredictions)
        );

        let t51 = {
            let _s = vp_obs::span("table_5_1");
            table_5_1::run(suite, kinds)
        };
        println!("{}\n", t51.render());

        let ft = {
            let _s = vp_obs::span("finite_table");
            finite_table::run(suite, kinds)
        };
        println!("{}\n", ft.render(finite_table::Which::Correct));
        println!("{}\n", ft.render(finite_table::Which::Incorrect));

        let t52 = {
            let _s = vp_obs::span("table_5_2");
            table_5_2::run(suite, kinds)
        };
        println!("{}", t52.render());
    });
}
