//! Regenerates the paper's entire evaluation section in one pass,
//! sharing profiling work across experiments.

use provp_bench::Options;
use provp_core::experiments::{
    classification, fig_2_2, fig_2_3, fig_4, finite_table, table_2_1, table_5_1, table_5_2,
};
use vp_workloads::WorkloadKind;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    let kinds = &opts.kinds;

    let int_kinds: Vec<WorkloadKind> = kinds.iter().copied().filter(|k| !k.is_fp()).collect();
    let fp_kinds: Vec<WorkloadKind> = kinds.iter().copied().filter(|k| k.is_fp()).collect();
    println!(
        "{}\n",
        table_2_1::run(&suite, &int_kinds, &fp_kinds).render()
    );
    println!("{}\n", fig_2_2::run(&suite, kinds).render());
    println!("{}\n", fig_2_3::run(&suite, kinds).render());

    let fig4 = fig_4::run(&suite, kinds);
    println!("{}\n", fig4.render(fig_4::Which::VMax));
    println!("{}\n", fig4.render(fig_4::Which::VAverage));
    println!("{}\n", fig4.render(fig_4::Which::SAverage));

    let cls = classification::run(&suite, kinds);
    println!("{}\n", cls.render(classification::Which::Mispredictions));
    println!(
        "{}\n",
        cls.render(classification::Which::CorrectPredictions)
    );

    println!("{}\n", table_5_1::run(&suite, kinds).render());

    let ft = finite_table::run(&suite, kinds);
    println!("{}\n", ft.render(finite_table::Which::Correct));
    println!("{}\n", ft.render(finite_table::Which::Incorrect));

    println!("{}", table_5_2::run(&suite, kinds).render());
}
