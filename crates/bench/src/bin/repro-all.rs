//! Regenerates the paper's entire evaluation section in one pass,
//! sharing profiling work across experiments.
//!
//! With `--metrics-out=FILE` the run additionally writes a JSON manifest
//! whose phase table carries one `repro-all/<experiment>` row per
//! table/figure; stdout stays byte-identical either way.

use provp_bench::run_experiment;
use provp_core::experiments::{
    classification, fig_2_2, fig_2_3, fig_4, finite_table, table_2_1, table_5_1, table_5_2,
};
use vp_workloads::WorkloadKind;

fn main() {
    run_experiment("repro-all", |opts, suite| {
        let kinds = &opts.kinds;

        let int_kinds: Vec<WorkloadKind> = kinds.iter().copied().filter(|k| !k.is_fp()).collect();
        let fp_kinds: Vec<WorkloadKind> = kinds.iter().copied().filter(|k| k.is_fp()).collect();
        let t21 = {
            let _s = vp_obs::span("table_2_1");
            table_2_1::run(suite, &int_kinds, &fp_kinds)
        };
        println!("{}\n", t21.render());
        let f22 = {
            let _s = vp_obs::span("fig_2_2");
            fig_2_2::run(suite, kinds)
        };
        println!("{}\n", f22.render());
        let f23 = {
            let _s = vp_obs::span("fig_2_3");
            fig_2_3::run(suite, kinds)
        };
        println!("{}\n", f23.render());

        let fig4 = {
            let _s = vp_obs::span("fig_4");
            fig_4::run(suite, kinds)
        };
        println!("{}\n", fig4.render(fig_4::Which::VMax));
        println!("{}\n", fig4.render(fig_4::Which::VAverage));
        println!("{}\n", fig4.render(fig_4::Which::SAverage));

        let cls = {
            let _s = vp_obs::span("classification");
            classification::run(suite, kinds)
        };
        println!("{}\n", cls.render(classification::Which::Mispredictions));
        println!(
            "{}\n",
            cls.render(classification::Which::CorrectPredictions)
        );

        let t51 = {
            let _s = vp_obs::span("table_5_1");
            table_5_1::run(suite, kinds)
        };
        println!("{}\n", t51.render());

        let ft = {
            let _s = vp_obs::span("finite_table");
            finite_table::run(suite, kinds)
        };
        println!("{}\n", ft.render(finite_table::Which::Correct));
        println!("{}\n", ft.render(finite_table::Which::Incorrect));

        let t52 = {
            let _s = vp_obs::span("table_5_2");
            table_5_2::run(suite, kinds)
        };
        println!("{}", t52.render());
    });
}
