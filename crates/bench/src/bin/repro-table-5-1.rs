//! Reproduces Table 5.1: admitted allocation-candidate fractions.

use provp_bench::Options;
use provp_core::experiments::table_5_1;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!("{}", table_5_1::run(&suite, &opts.kinds).render());
}
