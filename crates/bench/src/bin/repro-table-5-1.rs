//! Reproduces Table 5.1: admitted allocation-candidate fractions.

use provp_bench::run_experiment;
use provp_core::experiments::table_5_1;

fn main() {
    run_experiment("repro-table-5-1", |opts, suite| {
        println!("{}", table_5_1::run(suite, &opts.kinds).render());
    });
}
