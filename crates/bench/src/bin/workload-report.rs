//! Prints the static and dynamic characteristics of every workload:
//! the substrate table behind DESIGN.md.

use provp_bench::run_experiment;
use vp_sim::{run, InstrMix, RunLimits};
use vp_stats::TextTable;
use vp_workloads::{InputSet, Workload};

fn main() {
    run_experiment("workload-report", |opts, _suite| {
        let mut t = TextTable::new([
            "workload",
            "static instrs",
            "producers",
            "dynamic instrs",
            "loads%",
            "branches%",
            "fp%",
        ]);
        for &kind in &opts.kinds {
            let w = Workload::new(kind);
            let p = w.program(&InputSet::reference());
            let mut mix = InstrMix::new();
            let s = run(&p, &mut mix, RunLimits::default()).expect("workload runs");
            use vp_isa::OpCategory::*;
            let pct = |c| format!("{:.1}%", 100.0 * mix.fraction(c));
            let fp = 100.0 * (mix.fraction(FpAlu) + mix.fraction(FpLoad));
            t.row([
                w.name().to_owned(),
                p.len().to_string(),
                p.value_producers().count().to_string(),
                s.instructions().to_string(),
                format!(
                    "{:.1}%",
                    100.0 * (mix.fraction(IntLoad) + mix.fraction(FpLoad))
                ),
                pct(Branch),
                format!("{fp:.1}%"),
            ]);
        }
        println!("Workload characteristics (reference input)\n{t}");
    });
}
