//! Coverage-guided differential fuzzing of the whole simulation stack.
//!
//! Generates random well-formed programs, runs each through the
//! `vp-verify` oracle (reference interpreter vs the optimized machine,
//! trace serialization round-trip, reference predictors vs the table /
//! sharded-replay implementations) and reports any divergence with a
//! minimised repro.
//!
//! ```text
//! fuzz-sim [--cases=N] [--seed=S] [--max-shrink-steps=K] \
//!          [--corpus=DIR] [--metrics-out=FILE]
//! ```
//!
//! Every flag also accepts the space-separated form (`--cases 10000`),
//! via the crate-wide [`provp_bench::args::normalize`] helper.
//! A run is fully reproduced by `(seed, cases)`; a single failing case is
//! reproduced by `--cases=1 --seed=<case_seed>` using the per-case seed
//! printed in the report (see TESTING.md).
//!
//! Exit status: 0 when every case agrees, 1 when any divergence was
//! found, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use vp_obs::{obs_error, RunManifest};
use vp_verify::{run_fuzz, FuzzOptions};

struct Args {
    fuzz: FuzzOptions,
    metrics_out: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut fuzz = FuzzOptions::default();
    let mut metrics_out = None;
    for arg in provp_bench::args::normalize(args, &[])? {
        if let Some(v) = arg.strip_prefix("--cases=") {
            fuzz.cases = v
                .parse()
                .map_err(|e| format!("bad --cases value `{v}`: {e}"))?;
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            fuzz.seed = v
                .parse()
                .map_err(|e| format!("bad --seed value `{v}`: {e}"))?;
        } else if let Some(v) = arg.strip_prefix("--max-shrink-steps=") {
            fuzz.max_shrink_steps = v
                .parse()
                .map_err(|e| format!("bad --max-shrink-steps value `{v}`: {e}"))?;
        } else if let Some(v) = arg.strip_prefix("--corpus=") {
            fuzz.corpus = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--metrics-out=") {
            metrics_out = Some(PathBuf::from(v));
        } else {
            return Err(format!(
                "unknown argument `{arg}` (try --cases=, --seed=, \
                 --max-shrink-steps=, --corpus=, --metrics-out=)"
            ));
        }
    }
    Ok(Args { fuzz, metrics_out })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            obs_error!("{msg}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let report = {
        let _s = vp_obs::span("fuzz-sim");
        match run_fuzz(&args.fuzz) {
            Ok(r) => r,
            Err(e) => {
                obs_error!("fuzz run failed writing repros: {e}");
                return ExitCode::from(2);
            }
        }
    };

    println!(
        "fuzz-sim: {} cases (seed {}), {} divergences, coverage {} opcodes / {} edges, {:.1}s",
        report.cases,
        args.fuzz.seed,
        report.divergences.len(),
        report.distinct_opcodes,
        report.distinct_edges,
        started.elapsed().as_secs_f64()
    );

    for d in &report.divergences {
        println!(
            "\ndivergence in case {} — repro: fuzz-sim --cases 1 --seed {}",
            d.case, d.case_seed
        );
        println!("  {}", d.divergence);
        println!(
            "  shrunk {} -> {} instructions in {} steps",
            d.original_len,
            d.shrunk.text().len(),
            d.shrink_steps
        );
        match &d.repro_path {
            Some(path) => println!("  repro written to {}", path.display()),
            None => println!("  minimised program:\n{}", d.shrunk),
        }
    }

    if let Some(path) = &args.metrics_out {
        let manifest = RunManifest::from_snapshot(
            "fuzz-sim",
            std::env::args().skip(1).collect(),
            started.elapsed().as_secs_f64() * 1e3,
            &vp_obs::global().snapshot(),
        );
        if let Err(e) = vp_obs::write_manifest(&manifest, path) {
            obs_error!("failed to write manifest to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_both_flag_forms() {
        let a = parse_args([
            "--cases=42".to_owned(),
            "--seed".to_owned(),
            "7".to_owned(),
            "--max-shrink-steps=9".to_owned(),
            "--corpus".to_owned(),
            "/tmp/c".to_owned(),
            "--metrics-out=/tmp/m.json".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.fuzz.cases, 42);
        assert_eq!(a.fuzz.seed, 7);
        assert_eq!(a.fuzz.max_shrink_steps, 9);
        assert_eq!(a.fuzz.corpus, Some(PathBuf::from("/tmp/c")));
        assert_eq!(a.metrics_out, Some(PathBuf::from("/tmp/m.json")));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(["--cases".to_owned()]).is_err());
        assert!(parse_args(["--cases=many".to_owned()]).is_err());
        assert!(parse_args(["--frobnicate=1".to_owned()]).is_err());
    }
}
