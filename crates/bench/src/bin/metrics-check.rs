//! CI gate: compares a fresh run manifest against a checked-in baseline
//! and fails when simulator throughput regressed beyond the allowed
//! fraction.
//!
//! ```text
//! metrics-check --manifest=/tmp/manifest.json --baseline=BENCH_baseline.json \
//!               [--max-regression=0.30]
//! ```
//!
//! Exit status: 0 when throughput is within bounds (or the baseline
//! records none), 1 on a regression, 2 on usage/parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use vp_obs::{obs_error, RunManifest};

struct Args {
    manifest: PathBuf,
    baseline: PathBuf,
    max_regression: f64,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let (mut manifest, mut baseline, mut max_regression) = (None, None, 0.30_f64);
    for arg in args {
        if let Some(p) = arg.strip_prefix("--manifest=") {
            manifest = Some(PathBuf::from(p));
        } else if let Some(p) = arg.strip_prefix("--baseline=") {
            baseline = Some(PathBuf::from(p));
        } else if let Some(v) = arg.strip_prefix("--max-regression=") {
            max_regression = v
                .parse()
                .ok()
                .filter(|r| (0.0..1.0).contains(r))
                .ok_or_else(|| format!("bad --max-regression value `{v}` (want 0.0..1.0)"))?;
        } else {
            return Err(format!(
                "unknown argument `{arg}` (try --manifest=, --baseline=, --max-regression=)"
            ));
        }
    }
    Ok(Args {
        manifest: manifest.ok_or("missing --manifest=FILE")?,
        baseline: baseline.ok_or("missing --baseline=FILE")?,
        max_regression,
    })
}

fn load(path: &std::path::Path) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    RunManifest::parse(text.trim_end()).map_err(|e| format!("cannot parse {path:?}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            obs_error!("{msg}");
            return ExitCode::from(2);
        }
    };
    let (current, baseline) = match (load(&args.manifest), load(&args.baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            obs_error!("{e}");
            return ExitCode::from(2);
        }
    };

    let base_rate = baseline.sim_instr_per_sec();
    let cur_rate = current.sim_instr_per_sec();
    if base_rate <= 0.0 {
        println!("metrics-check: baseline records no simulator throughput; skipping gate");
        return ExitCode::SUCCESS;
    }
    let floor = base_rate * (1.0 - args.max_regression);
    println!(
        "metrics-check: sim throughput {cur_rate:.0} instr/s vs baseline {base_rate:.0} \
         (floor {floor:.0}, max regression {:.0}%)",
        100.0 * args.max_regression
    );
    if cur_rate < floor {
        obs_error!(
            "simulator throughput regressed {:.1}% (limit {:.0}%)",
            100.0 * (1.0 - cur_rate / base_rate),
            100.0 * args.max_regression
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_validates_flags() {
        let a = parse_args([
            "--manifest=/tmp/m.json".to_owned(),
            "--baseline=b.json".to_owned(),
            "--max-regression=0.5".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.manifest, PathBuf::from("/tmp/m.json"));
        assert!((a.max_regression - 0.5).abs() < 1e-12);
        assert!(parse_args(["--manifest=m".to_owned()]).is_err());
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-regression=2".to_owned()
        ])
        .is_err());
    }
}
