//! CI gate: compares a fresh run manifest against a checked-in baseline
//! and fails when simulator throughput regressed beyond the allowed
//! fraction.
//!
//! ```text
//! metrics-check --manifest=/tmp/manifest.json --baseline=BENCH_baseline.json \
//!               [--max-regression=0.30] \
//!               [--phase=repro-all/classification/predict] \
//!               [--max-phase-regression=0.25] \
//!               [--max-accuracy-drop=0.005] \
//!               [--max-phase-share-regression=0.15] \
//!               [--max-matrix-passes-per-trace=1] \
//!               [--max-peak-rss-regression=0.25]
//! ```
//!
//! Accepts every manifest schema version (v1 aggregates-only, v2 with
//! the `samples` series, v3 with the `attribution` array, v4 with the
//! `profile` section) and both flag forms (`--flag=V` and `--flag V`).
//!
//! Besides the simulator-throughput gate, `--phase=` (repeatable) gates
//! the wall time of individual span paths: the current manifest's
//! `total_ms` for each named phase must not exceed the baseline's by more
//! than `--max-phase-regression` (default 0.25). A phase absent from the
//! *baseline* is skipped with a warning (new phases have no reference);
//! a phase absent from the *current* manifest is a usage error (exit 2)
//! because the gate was asked to check something the run never measured.
//!
//! `--max-phase-share-regression=F` gates the *profile* section (v4
//! manifests, runs invoked with `--profile-hz=`): no profiled phase's
//! share of wall-time samples (`total_share`) may grow by more than `F`
//! (an absolute fraction, e.g. `0.15` = 15 percentage points) over the
//! baseline's. A phase absent from the baseline profile counts as share
//! 0 — brand-new hot phases are exactly what the gate exists to catch.
//! When the gate fails it names the guilty phase and the hottest sampled
//! stack beneath it. A baseline without a `profile` section skips the
//! gate with a warning (refresh it to re-arm); a *current* manifest
//! without one is a usage error (exit 2) because the gate was asked to
//! check a run that never profiled.
//!
//! `--max-matrix-passes-per-trace=N` gates sweep *fusion*: the current
//! manifest's `replay.matrix_passes` counter may not exceed `N` times
//! its `replay.matrix_traces` counter (distinct reference traces swept
//! by the fused sweep). CI runs with `N=1` — every trace fused into
//! exactly one matrix pass — so a regression that silently falls back
//! to per-cell replays (or primes the memo twice) fails even when the
//! extra passes happen to stay inside the wall-time ceiling. A current
//! manifest without the two counters, or one that swept no traces at
//! all, is a usage error (exit 2): the gate was asked to check a run
//! that never exercised the fused sweep.
//!
//! `--max-peak-rss-regression=F` gates peak memory: the current run's
//! peak resident set size may not exceed the baseline's by more than `F`
//! (a fraction of the baseline, e.g. `0.25` = 25%). The reading prefers
//! the `rss.sampled_peak_bytes` max-gauge (populated on every profiler
//! tick under `--profile-hz=`, so it sees transient peaks freed before
//! exit) and falls back to the end-of-run `peak_rss_bytes` (`VmHWM`)
//! when the run was not profiled. This is the gate that keeps the
//! bounded-memory streaming pipeline honest: a change that quietly
//! re-materialises the trace shows up as an RSS step no wall-time gate
//! notices. A baseline recording no RSS skips the gate with a warning
//! (refresh it to re-arm); a *current* manifest recording none is a
//! usage error (exit 2).
//!
//! `--max-accuracy-drop=F` gates aggregate *prediction* accuracy: the
//! run-wide effective accuracy (`predictor.speculated_correct /
//! predictor.speculated`) must not fall more than `F` (an absolute
//! fraction, e.g. `0.005` = half a percentage point) below the
//! baseline's. When the gate fails and the current manifest carries an
//! `attribution` array, the report names the guiltiest PCs (hottest
//! mispredictors with their dominant cause and profile drift) so the
//! regression arrives pre-blamed. A baseline without the predictor
//! counters skips the gate with a warning (refresh it to re-arm).
//!
//! Exit status:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | throughput and every gated phase within bounds |
//! | 1 | regression beyond `--max-regression` / `--max-phase-regression` |
//! | 2 | usage error, or the *current* manifest is missing/unparsable, or a `--phase=` is absent from it |
//! | 3 | the *baseline* manifest is missing (unreadable) |
//! | 4 | the *baseline* manifest is unparsable |
//!
//! Codes 3 and 4 let CI distinguish "the gate could not run" (fix the
//! baseline, e.g. after a schema change) from "the gate ran and failed"
//! (a real regression); both print a `PROVP_LOG`-visible warning on
//! stderr.

use std::path::PathBuf;
use std::process::ExitCode;

use vp_obs::{obs_error, obs_warn, RunManifest};

struct Args {
    manifest: PathBuf,
    baseline: PathBuf,
    max_regression: f64,
    phases: Vec<String>,
    max_phase_regression: f64,
    max_accuracy_drop: Option<f64>,
    max_phase_share_regression: Option<f64>,
    max_matrix_passes_per_trace: Option<u64>,
    max_peak_rss_regression: Option<f64>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let (mut manifest, mut baseline, mut max_regression) = (None, None, 0.30_f64);
    let (mut phases, mut max_phase_regression) = (Vec::new(), 0.25_f64);
    let mut max_accuracy_drop = None;
    let mut max_phase_share_regression = None;
    let mut max_matrix_passes_per_trace = None;
    let mut max_peak_rss_regression = None;
    for arg in provp_bench::args::normalize(args, &[])? {
        if let Some(p) = arg.strip_prefix("--manifest=") {
            manifest = Some(PathBuf::from(p));
        } else if let Some(p) = arg.strip_prefix("--baseline=") {
            baseline = Some(PathBuf::from(p));
        } else if let Some(v) = arg.strip_prefix("--max-regression=") {
            max_regression = v
                .parse()
                .ok()
                .filter(|r| (0.0..1.0).contains(r))
                .ok_or_else(|| format!("bad --max-regression value `{v}` (want 0.0..1.0)"))?;
        } else if let Some(p) = arg.strip_prefix("--phase=") {
            if p.is_empty() {
                return Err("empty --phase path".to_owned());
            }
            phases.push(p.to_owned());
        } else if let Some(v) = arg.strip_prefix("--max-phase-regression=") {
            max_phase_regression =
                v.parse().ok().filter(|r| *r >= 0.0).ok_or_else(|| {
                    format!("bad --max-phase-regression value `{v}` (want >= 0.0)")
                })?;
        } else if let Some(v) = arg.strip_prefix("--max-accuracy-drop=") {
            max_accuracy_drop = Some(
                v.parse()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        format!("bad --max-accuracy-drop value `{v}` (want 0.0..=1.0)")
                    })?,
            );
        } else if let Some(v) = arg.strip_prefix("--max-phase-share-regression=") {
            max_phase_share_regression = Some(
                v.parse()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        format!("bad --max-phase-share-regression value `{v}` (want 0.0..=1.0)")
                    })?,
            );
        } else if let Some(v) = arg.strip_prefix("--max-matrix-passes-per-trace=") {
            max_matrix_passes_per_trace =
                Some(v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("bad --max-matrix-passes-per-trace value `{v}` (want >= 1)")
                })?);
        } else if let Some(v) = arg.strip_prefix("--max-peak-rss-regression=") {
            max_peak_rss_regression =
                Some(v.parse().ok().filter(|r| *r >= 0.0).ok_or_else(|| {
                    format!("bad --max-peak-rss-regression value `{v}` (want >= 0.0)")
                })?);
        } else {
            return Err(format!(
                "unknown argument `{arg}` (try --manifest=, --baseline=, --max-regression=, \
                 --phase=, --max-phase-regression=, --max-accuracy-drop=, \
                 --max-phase-share-regression=, --max-matrix-passes-per-trace=, \
                 --max-peak-rss-regression=)"
            ));
        }
    }
    Ok(Args {
        manifest: manifest.ok_or("missing --manifest=FILE")?,
        baseline: baseline.ok_or("missing --baseline=FILE")?,
        max_regression,
        phases,
        max_phase_regression,
        max_accuracy_drop,
        max_phase_share_regression,
        max_matrix_passes_per_trace,
        max_peak_rss_regression,
    })
}

/// The fused-sweep pass accounting from a manifest's counters: `(matrix
/// passes, distinct traces swept)`. `None` when the counters are absent
/// or the run swept no traces — the gate cannot judge a run that never
/// exercised the fused sweep.
fn matrix_pass_rate(m: &RunManifest) -> Option<(u64, u64)> {
    let passes = *m.counters.get("replay.matrix_passes")?;
    let traces = *m.counters.get("replay.matrix_traces")?;
    (traces > 0).then_some((passes, traces))
}

/// The best available peak-RSS reading from a manifest: the
/// `rss.sampled_peak_bytes` max-gauge when the run was profiled (it sees
/// transient peaks freed before exit), else the end-of-run `VmHWM`
/// snapshot. `None` when the run recorded neither (e.g. no procfs).
fn peak_rss(m: &RunManifest) -> Option<u64> {
    m.gauges
        .get("rss.sampled_peak_bytes")
        .copied()
        .filter(|&b| b > 0)
        .or_else(|| (m.peak_rss_bytes > 0).then_some(m.peak_rss_bytes))
}

/// Run-wide effective prediction accuracy from a manifest's counters
/// (`None` when the run recorded no speculated predictions — e.g. a
/// pre-v3 baseline whose counters predate the accuracy gate).
fn effective_accuracy(m: &RunManifest) -> Option<f64> {
    let speculated = *m.counters.get("predictor.speculated")?;
    let correct = *m.counters.get("predictor.speculated_correct")?;
    (speculated > 0).then(|| correct as f64 / speculated as f64)
}

/// Prints per-PC blame lines for an accuracy regression from the current
/// manifest's attribution array (a no-op when the run was not attributed).
fn blame_accuracy(current: &RunManifest) {
    if current.attribution.is_empty() {
        println!(
            "metrics-check: no attribution in the manifest; rerun with --attribution \
             to blame specific PCs"
        );
        return;
    }
    let mut rows: Vec<(&vp_obs::AttributionRun, &vp_obs::AttributionPc)> = current
        .attribution
        .iter()
        .flat_map(|run| run.pcs.iter().map(move |pc| (run, pc)))
        .collect();
    rows.sort_by(|(_, a), (_, b)| {
        b.speculated_incorrect()
            .cmp(&a.speculated_incorrect())
            .then_with(|| a.pc.cmp(&b.pc))
    });
    for (run, pc) in rows.iter().take(5) {
        let cause = pc.dominant_cause().unwrap_or("-");
        let drift = pc
            .drift
            .map_or_else(|| "-".to_owned(), |d| format!("{:+.1}pp", d * 100.0));
        println!(
            "metrics-check: blame {} @{:#x} [{}]  {} wrong speculations, cause {cause}, drift {drift}",
            run.label(),
            pc.pc,
            pc.directive,
            pc.speculated_incorrect(),
        );
    }
}

/// One profiled phase whose sample share grew past the allowed increase.
#[derive(Debug, PartialEq)]
struct ShareRegression {
    path: String,
    base_share: f64,
    cur_share: f64,
    /// The hottest sampled stack at or below the guilty phase, so the
    /// failure message points at concrete code, not just a span path.
    hottest_stack: Option<String>,
}

/// Compares profiled phase shares: every phase in `cur` whose
/// `total_share` exceeds the baseline's (0 when absent — new hot phases
/// are regressions too) by more than `max_increase` is returned, largest
/// growth first.
fn phase_share_regressions(
    baseline: &vp_obs::ProfileSection,
    current: &vp_obs::ProfileSection,
    max_increase: f64,
) -> Vec<ShareRegression> {
    let mut guilty: Vec<ShareRegression> = current
        .phases
        .iter()
        .filter_map(|cur| {
            let base_share = baseline
                .phases
                .iter()
                .find(|b| b.path == cur.path)
                .map_or(0.0, |b| b.total_share);
            (cur.total_share - base_share > max_increase).then(|| ShareRegression {
                path: cur.path.clone(),
                base_share,
                cur_share: cur.total_share,
                hottest_stack: hottest_stack_under(current, &cur.path),
            })
        })
        .collect();
    guilty.sort_by(|a, b| {
        let (da, db) = (a.cur_share - a.base_share, b.cur_share - b.base_share);
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    guilty
}

/// The highest-count hot stack whose frames start with the phase path
/// (stacks are `;`-joined, phase paths `/`-joined).
fn hottest_stack_under(profile: &vp_obs::ProfileSection, phase_path: &str) -> Option<String> {
    let prefix: Vec<&str> = phase_path.split('/').collect();
    profile
        .hot_stacks
        .iter()
        .filter(|h| {
            let frames: Vec<&str> = h.stack.split(';').collect();
            frames.len() >= prefix.len() && frames[..prefix.len()] == prefix[..]
        })
        .max_by(|a, b| a.count.cmp(&b.count).then_with(|| b.stack.cmp(&a.stack)))
        .map(|h| h.stack.clone())
}

fn load(path: &std::path::Path) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    RunManifest::parse(text.trim_end()).map_err(|e| format!("cannot parse {path:?}: {e}"))
}

/// Why the baseline could not be used (each maps to a distinct exit
/// code, so CI can tell "fix the baseline" from "fix the regression").
#[derive(Debug, PartialEq)]
enum BaselineError {
    /// The file could not be read (missing, unreadable): exit 3.
    Missing(String),
    /// The file was read but is not a valid manifest: exit 4.
    Unparsable(String),
}

fn load_baseline(path: &std::path::Path) -> Result<RunManifest, BaselineError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| BaselineError::Missing(format!("cannot read baseline {path:?}: {e}")))?;
    RunManifest::parse(text.trim_end())
        .map_err(|e| BaselineError::Unparsable(format!("cannot parse baseline {path:?}: {e}")))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            obs_error!("{msg}");
            return ExitCode::from(2);
        }
    };
    let current = match load(&args.manifest) {
        Ok(c) => c,
        Err(e) => {
            obs_error!("{e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(&args.baseline) {
        Ok(b) => b,
        Err(BaselineError::Missing(msg)) => {
            obs_warn!("{msg}; the throughput gate cannot run (exit 3)");
            return ExitCode::from(3);
        }
        Err(BaselineError::Unparsable(msg)) => {
            obs_warn!("{msg}; refresh BENCH_baseline.json (exit 4)");
            return ExitCode::from(4);
        }
    };

    let mut failed = false;

    let base_rate = baseline.sim_instr_per_sec();
    let cur_rate = current.sim_instr_per_sec();
    if base_rate <= 0.0 {
        println!("metrics-check: baseline records no simulator throughput; skipping gate");
    } else {
        let floor = base_rate * (1.0 - args.max_regression);
        println!(
            "metrics-check: sim throughput {cur_rate:.0} instr/s vs baseline {base_rate:.0} \
             (floor {floor:.0}, max regression {:.0}%)",
            100.0 * args.max_regression
        );
        if cur_rate < floor {
            obs_error!(
                "simulator throughput regressed {:.1}% (limit {:.0}%)",
                100.0 * (1.0 - cur_rate / base_rate),
                100.0 * args.max_regression
            );
            failed = true;
        }
    }

    // Aggregate prediction-accuracy gate (opt-in via --max-accuracy-drop):
    // catches correctness drift that throughput gates cannot see.
    if let Some(max_drop) = args.max_accuracy_drop {
        match (effective_accuracy(&baseline), effective_accuracy(&current)) {
            (Some(base_acc), Some(cur_acc)) => {
                let floor = base_acc - max_drop;
                println!(
                    "metrics-check: effective accuracy {:.2}% vs baseline {:.2}% \
                     (floor {:.2}%, max drop {:.2}pp)",
                    100.0 * cur_acc,
                    100.0 * base_acc,
                    100.0 * floor,
                    100.0 * max_drop
                );
                if cur_acc < floor {
                    obs_error!(
                        "effective accuracy dropped {:.2}pp (limit {:.2}pp)",
                        100.0 * (base_acc - cur_acc),
                        100.0 * max_drop
                    );
                    blame_accuracy(&current);
                    failed = true;
                }
            }
            (None, _) => obs_warn!(
                "baseline records no predictor.speculated* counters; skipping the \
                 accuracy gate (refresh BENCH_baseline.json to re-arm it)"
            ),
            (_, None) => {
                obs_error!(
                    "--max-accuracy-drop given but the current manifest records no \
                     predictor.speculated* counters (was the run a predictor experiment?)"
                );
                return ExitCode::from(2);
            }
        }
    }

    // Peak-memory gate (opt-in via --max-peak-rss-regression): keeps the
    // bounded-memory streaming pipeline honest — re-materialising the
    // trace shows up here even when wall time stays flat.
    if let Some(max_growth) = args.max_peak_rss_regression {
        match (peak_rss(&baseline), peak_rss(&current)) {
            (Some(base_rss), Some(cur_rss)) => {
                let ceiling = base_rss as f64 * (1.0 + max_growth);
                println!(
                    "metrics-check: peak RSS {:.1} MiB vs baseline {:.1} MiB \
                     (ceiling {:.1} MiB, max regression {:.0}%)",
                    cur_rss as f64 / (1024.0 * 1024.0),
                    base_rss as f64 / (1024.0 * 1024.0),
                    ceiling / (1024.0 * 1024.0),
                    100.0 * max_growth
                );
                if cur_rss as f64 > ceiling {
                    obs_error!(
                        "peak RSS regressed {:.1}% (limit {:.0}%) — did something \
                         re-materialise a trace the streaming path used to bound?",
                        100.0 * (cur_rss as f64 / base_rss as f64 - 1.0),
                        100.0 * max_growth
                    );
                    failed = true;
                }
            }
            (None, _) => obs_warn!(
                "baseline records no peak RSS (neither rss.sampled_peak_bytes nor \
                 peak_rss_bytes); skipping the peak-RSS gate (refresh \
                 BENCH_baseline.json to re-arm it)"
            ),
            (_, None) => {
                obs_error!(
                    "--max-peak-rss-regression given but the current manifest records \
                     no peak RSS (no procfs? rerun with --profile-hz= to sample it)"
                );
                return ExitCode::from(2);
            }
        }
    }

    // Sweep-fusion gate (opt-in via --max-matrix-passes-per-trace):
    // catches a fallback to per-cell replays even when the extra passes
    // stay inside the wall-time ceilings.
    if let Some(max_per_trace) = args.max_matrix_passes_per_trace {
        match matrix_pass_rate(&current) {
            Some((passes, traces)) => {
                println!(
                    "metrics-check: {passes} matrix passes over {traces} swept traces \
                     (limit {max_per_trace} per trace)"
                );
                if passes > max_per_trace.saturating_mul(traces) {
                    obs_error!(
                        "the fused sweep scanned traces {passes} times for {traces} distinct \
                         traces (limit {max_per_trace} per trace) — is something replaying \
                         per cell again?"
                    );
                    failed = true;
                }
            }
            None => {
                obs_error!(
                    "--max-matrix-passes-per-trace given but the current manifest records \
                     no replay.matrix_passes / replay.matrix_traces counters (or swept no \
                     traces) — was the run a fused-sweep experiment?"
                );
                return ExitCode::from(2);
            }
        }
    }

    // Profile sample-share gate (opt-in via --max-phase-share-regression):
    // catches a phase quietly eating a bigger slice of the run even when
    // absolute wall time stays within its own gate.
    if let Some(max_increase) = args.max_phase_share_regression {
        match (&baseline.profile, &current.profile) {
            (Some(base_prof), Some(cur_prof)) => {
                println!(
                    "metrics-check: phase-share gate over {} profiled phases \
                     (max increase {:.0}pp)",
                    cur_prof.phases.len(),
                    100.0 * max_increase
                );
                for g in phase_share_regressions(base_prof, cur_prof, max_increase) {
                    obs_error!(
                        "phase `{}` grew from {:.1}% to {:.1}% of samples \
                         (+{:.1}pp, limit {:.0}pp)",
                        g.path,
                        100.0 * g.base_share,
                        100.0 * g.cur_share,
                        100.0 * (g.cur_share - g.base_share),
                        100.0 * max_increase
                    );
                    if let Some(stack) = &g.hottest_stack {
                        println!("metrics-check: blame hottest stack `{stack}`");
                    }
                    failed = true;
                }
            }
            (None, Some(_)) => obs_warn!(
                "baseline manifest has no profile section; skipping the phase-share \
                 gate (refresh BENCH_baseline.json with --profile-hz= to re-arm it)"
            ),
            (_, None) => {
                obs_error!(
                    "--max-phase-share-regression given but the current manifest has no \
                     profile section (was the run invoked with --profile-hz=?)"
                );
                return ExitCode::from(2);
            }
        }
    }

    // Per-phase wall-time gates: every --phase= must stay within
    // --max-phase-regression of the baseline's total_ms.
    for path in &args.phases {
        let Some(cur) = current.phases.iter().find(|p| p.path == *path) else {
            obs_error!(
                "--phase={path} is absent from the current manifest {:?} \
                 (was the run invoked with the right binary and flags?)",
                args.manifest
            );
            return ExitCode::from(2);
        };
        let Some(base) = baseline.phases.iter().find(|p| p.path == *path) else {
            obs_warn!("phase `{path}` is absent from the baseline; skipping its gate");
            continue;
        };
        if base.total_ms <= 0.0 {
            obs_warn!("phase `{path}` has a zero baseline; skipping its gate");
            continue;
        }
        let ceiling = base.total_ms * (1.0 + args.max_phase_regression);
        println!(
            "metrics-check: phase {path} {:.2} ms vs baseline {:.2} ms \
             (ceiling {ceiling:.2}, max regression {:.0}%)",
            cur.total_ms,
            base.total_ms,
            100.0 * args.max_phase_regression
        );
        if cur.total_ms > ceiling {
            obs_error!(
                "phase `{path}` regressed {:.1}% (limit {:.0}%)",
                100.0 * (cur.total_ms / base.total_ms - 1.0),
                100.0 * args.max_phase_regression
            );
            failed = true;
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_validates_flags() {
        let a = parse_args([
            "--manifest=/tmp/m.json".to_owned(),
            "--baseline=b.json".to_owned(),
            "--max-regression=0.5".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.manifest, PathBuf::from("/tmp/m.json"));
        assert!((a.max_regression - 0.5).abs() < 1e-12);
        assert!(a.phases.is_empty());
        assert!((a.max_phase_regression - 0.25).abs() < 1e-12);
        assert!(parse_args(["--manifest=m".to_owned()]).is_err());
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-regression=2".to_owned()
        ])
        .is_err());
    }

    #[test]
    fn missing_baseline_is_distinguished_from_unparsable() {
        let dir = std::env::temp_dir().join(format!("metrics-check-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file -> Missing (exit 3 path).
        let err = load_baseline(&dir.join("nope.json")).unwrap_err();
        assert!(matches!(err, BaselineError::Missing(_)), "{err:?}");

        // Present but garbage -> Unparsable (exit 4 path).
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{ not a manifest").unwrap();
        let err = load_baseline(&bad).unwrap_err();
        assert!(matches!(err, BaselineError::Unparsable(_)), "{err:?}");

        // A valid manifest loads fine through the same path.
        let good = dir.join("good.json");
        let manifest = RunManifest {
            bin: "x".to_owned(),
            ..RunManifest::default()
        };
        std::fs::write(&good, manifest.to_json()).unwrap();
        assert_eq!(load_baseline(&good).unwrap(), manifest);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn accuracy_gate_flag_and_counters() {
        let a = parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-accuracy-drop".to_owned(), // space-separated form
            "0.01".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.max_accuracy_drop, Some(0.01));
        let a = parse_args(["--manifest=m".to_owned(), "--baseline=b".to_owned()]).unwrap();
        assert_eq!(a.max_accuracy_drop, None);
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-accuracy-drop=2".to_owned(),
        ])
        .is_err());

        let mut m = RunManifest {
            bin: "x".to_owned(),
            ..RunManifest::default()
        };
        assert_eq!(effective_accuracy(&m), None);
        m.counters.insert("predictor.speculated".to_owned(), 200);
        m.counters
            .insert("predictor.speculated_correct".to_owned(), 150);
        assert_eq!(effective_accuracy(&m), Some(0.75));
    }

    fn profile(phases: &[(&str, f64)], stacks: &[(&str, u64)]) -> vp_obs::ProfileSection {
        vp_obs::ProfileSection {
            hz: 99,
            samples: stacks.iter().map(|(_, c)| c).sum(),
            dropped: 0,
            threads: 1,
            hot_stacks: stacks
                .iter()
                .map(|(s, c)| vp_obs::HotStack {
                    stack: (*s).to_owned(),
                    count: *c,
                    share: 0.0,
                })
                .collect(),
            phases: phases
                .iter()
                .map(|(p, share)| vp_obs::PhaseShare {
                    path: (*p).to_owned(),
                    self_share: *share,
                    total_share: *share,
                })
                .collect(),
        }
    }

    #[test]
    fn phase_share_gate_blames_the_phase_that_grew() {
        // The doctored scenario from the issue: `run/profile` went from
        // 12% to 31% of samples while everything else shrank.
        let base = profile(&[("run", 1.0), ("run/profile", 0.12)], &[]);
        let cur = profile(
            &[("run", 1.0), ("run/profile", 0.31)],
            &[
                ("run;predict", 40),
                ("run;profile;merge", 25),
                ("run;profile", 6),
            ],
        );
        let guilty = phase_share_regressions(&base, &cur, 0.15);
        assert_eq!(guilty.len(), 1);
        assert_eq!(guilty[0].path, "run/profile");
        assert!((guilty[0].base_share - 0.12).abs() < 1e-12);
        assert!((guilty[0].cur_share - 0.31).abs() < 1e-12);
        assert_eq!(
            guilty[0].hottest_stack.as_deref(),
            Some("run;profile;merge"),
            "the hottest stack *under* the guilty phase must be named"
        );

        // Within bounds -> nothing reported.
        assert!(phase_share_regressions(&base, &cur, 0.25).is_empty());
    }

    #[test]
    fn phase_share_gate_counts_new_phases_from_zero() {
        let base = profile(&[("run", 1.0)], &[]);
        let cur = profile(&[("run", 1.0), ("run/surprise", 0.2)], &[("other", 1)]);
        let guilty = phase_share_regressions(&base, &cur, 0.1);
        assert_eq!(guilty.len(), 1);
        assert_eq!(guilty[0].path, "run/surprise");
        assert_eq!(guilty[0].base_share, 0.0);
        // No sampled stack lives under the new phase: blame stays honest.
        assert_eq!(guilty[0].hottest_stack, None);
    }

    #[test]
    fn parses_phase_share_flag() {
        let a = parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-phase-share-regression=0.15".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.max_phase_share_regression, Some(0.15));
        let a = parse_args(["--manifest=m".to_owned(), "--baseline=b".to_owned()]).unwrap();
        assert_eq!(a.max_phase_share_regression, None);
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-phase-share-regression=1.5".to_owned(),
        ])
        .is_err());
    }

    #[test]
    fn matrix_pass_gate_flag_and_counters() {
        let a = parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-matrix-passes-per-trace".to_owned(), // space-separated form
            "1".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.max_matrix_passes_per_trace, Some(1));
        let a = parse_args(["--manifest=m".to_owned(), "--baseline=b".to_owned()]).unwrap();
        assert_eq!(a.max_matrix_passes_per_trace, None);
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-matrix-passes-per-trace=0".to_owned(),
        ])
        .is_err());
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-matrix-passes-per-trace=lots".to_owned(),
        ])
        .is_err());

        let mut m = RunManifest {
            bin: "x".to_owned(),
            ..RunManifest::default()
        };
        // Counters absent -> the gate cannot judge the run.
        assert_eq!(matrix_pass_rate(&m), None);
        m.counters.insert("replay.matrix_passes".to_owned(), 9);
        assert_eq!(matrix_pass_rate(&m), None);
        // Counters present but no trace swept -> still unjudgeable.
        m.counters.insert("replay.matrix_traces".to_owned(), 0);
        assert_eq!(matrix_pass_rate(&m), None);
        m.counters.insert("replay.matrix_traces".to_owned(), 9);
        assert_eq!(matrix_pass_rate(&m), Some((9, 9)));
    }

    #[test]
    fn peak_rss_gate_flag_and_readings() {
        let a = parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-peak-rss-regression".to_owned(), // space-separated form
            "0.25".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.max_peak_rss_regression, Some(0.25));
        let a = parse_args(["--manifest=m".to_owned(), "--baseline=b".to_owned()]).unwrap();
        assert_eq!(a.max_peak_rss_regression, None);
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-peak-rss-regression=-0.1".to_owned(),
        ])
        .is_err());

        let mut m = RunManifest {
            bin: "x".to_owned(),
            peak_rss_bytes: 0,
            ..RunManifest::default()
        };
        // Neither reading recorded -> the gate cannot judge the run.
        assert_eq!(peak_rss(&m), None);
        // End-of-run VmHWM alone is enough...
        m.peak_rss_bytes = 64 << 20;
        assert_eq!(peak_rss(&m), Some(64 << 20));
        // ...but the sampled max-gauge wins when present (it sees
        // transient peaks the exit snapshot can miss across processes).
        m.gauges
            .insert("rss.sampled_peak_bytes".to_owned(), 48 << 20);
        assert_eq!(peak_rss(&m), Some(48 << 20));
        // A zero gauge (sampler never ticked) falls back again.
        m.gauges.insert("rss.sampled_peak_bytes".to_owned(), 0);
        assert_eq!(peak_rss(&m), Some(64 << 20));
    }

    #[test]
    fn parses_phase_gates() {
        let a = parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--phase=repro-all/classification/predict".to_owned(),
            "--phase=repro-all/finite_table/predict".to_owned(),
            "--max-phase-regression=0.4".to_owned(),
        ])
        .unwrap();
        assert_eq!(
            a.phases,
            vec![
                "repro-all/classification/predict".to_owned(),
                "repro-all/finite_table/predict".to_owned()
            ]
        );
        assert!((a.max_phase_regression - 0.4).abs() < 1e-12);

        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--phase=".to_owned(),
        ])
        .is_err());
        assert!(parse_args([
            "--manifest=m".to_owned(),
            "--baseline=b".to_owned(),
            "--max-phase-regression=-1".to_owned(),
        ])
        .is_err());
    }
}
