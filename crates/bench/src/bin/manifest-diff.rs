//! Attributes the differences between two run manifests: which phases
//! gained wall clock, which counters moved, what happened to derived
//! throughput. The CI pipeline runs this when `metrics-check` fails, so
//! a throughput regression arrives with a blame table instead of a bare
//! exit code.
//!
//! ```text
//! manifest-diff --baseline=BENCH_baseline.json --manifest=/tmp/manifest.json \
//!               [--format=table|json|markdown] [--top=N]
//! ```
//!
//! - `--format=table` (default) prints an aligned text report;
//! - `--format=markdown` prints a GitHub-flavoured table (pipe it into
//!   `$GITHUB_STEP_SUMMARY`);
//! - `--format=json` prints the full `provp-manifest-diff/v1` document.
//! - `--top=N` limits table/markdown output to the N biggest movers per
//!   section (default 15; 0 means unlimited; JSON is never truncated).
//!
//! Accepts every manifest schema version and both flag forms
//! (`--flag=V` and `--flag V`). When both manifests carry `attribution`
//! arrays (schema v3) the report includes a per-PC accuracy-blame
//! section; when both carry a `profile` section (schema v4) it includes
//! a sample-share blame section ("phase X went from 12% to 31% of
//! samples"). Comparing across schema versions downgrades gracefully: a
//! warning notes the skew and sections present on only one side are
//! skipped rather than reported as deltas. This is a reporting tool,
//! not experiment instrumentation: it prints its result to stdout.
//!
//! Exit status: 0 on success (differences are *reported*, never an
//! error), 2 on usage/read/parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use vp_obs::{obs_error, obs_warn, ManifestDiff, RunManifest};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
    Markdown,
}

struct Args {
    baseline: PathBuf,
    manifest: PathBuf,
    format: Format,
    top: usize,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let (mut baseline, mut manifest) = (None, None);
    let mut format = Format::Table;
    let mut top = 15usize;
    for arg in provp_bench::args::normalize(args, &[])? {
        if let Some(p) = arg.strip_prefix("--baseline=") {
            baseline = Some(PathBuf::from(p));
        } else if let Some(p) = arg.strip_prefix("--manifest=") {
            manifest = Some(PathBuf::from(p));
        } else if let Some(f) = arg.strip_prefix("--format=") {
            format = match f {
                "table" => Format::Table,
                "json" => Format::Json,
                "markdown" => Format::Markdown,
                other => {
                    return Err(format!(
                        "bad --format value `{other}` (want table, json or markdown)"
                    ))
                }
            };
        } else if let Some(n) = arg.strip_prefix("--top=") {
            top = n
                .parse()
                .map_err(|_| format!("bad --top value `{n}` (want an integer; 0 = unlimited)"))?;
        } else {
            return Err(format!(
                "unknown argument `{arg}` (try --baseline=, --manifest=, --format=, --top=)"
            ));
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("missing --baseline=FILE")?,
        manifest: manifest.ok_or("missing --manifest=FILE")?,
        format,
        top,
    })
}

fn load(path: &std::path::Path) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    RunManifest::parse(text.trim_end()).map_err(|e| format!("cannot parse {path:?}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            obs_error!("{msg}");
            return ExitCode::from(2);
        }
    };
    let (baseline, current) = match (load(&args.baseline), load(&args.manifest)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            obs_error!("{e}");
            return ExitCode::from(2);
        }
    };
    let diff = ManifestDiff::compute(&baseline, &current);
    if let Some((base_schema, cur_schema)) = &diff.schema_skew {
        obs_warn!(
            "comparing across manifest schema versions ({base_schema} vs {cur_schema}); \
             sections absent from either side are skipped, not reported as deltas"
        );
    }
    match args.format {
        Format::Table => print!("{}", diff.render_table(args.top)),
        Format::Markdown => print!("{}", diff.render_markdown(args.top)),
        Format::Json => println!("{}", diff.to_json()),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_rejects_bad_values() {
        let a = parse_args([
            "--baseline=b.json".to_owned(),
            "--manifest=m.json".to_owned(),
            "--format=markdown".to_owned(),
            "--top=3".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.baseline, PathBuf::from("b.json"));
        assert_eq!(a.format, Format::Markdown);
        assert_eq!(a.top, 3);

        // Defaults, and the space-separated flag form.
        let a = parse_args([
            "--baseline".to_owned(),
            "b".to_owned(),
            "--manifest=m".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.baseline, PathBuf::from("b"));
        assert_eq!(a.format, Format::Table);
        assert_eq!(a.top, 15);

        assert!(parse_args(["--baseline=b".to_owned()]).is_err());
        assert!(parse_args([
            "--baseline=b".to_owned(),
            "--manifest=m".to_owned(),
            "--format=yaml".to_owned()
        ])
        .is_err());
        assert!(parse_args([
            "--baseline=b".to_owned(),
            "--manifest=m".to_owned(),
            "--top=half".to_owned()
        ])
        .is_err());
    }
}
