//! Ablation: value-misprediction penalty sweep on the abstract machine.

use provp_bench::Options;
use provp_core::experiments::ablations;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    for &kind in &opts.kinds {
        let rows = ablations::penalty(&suite, kind, &[0, 1, 2, 4, 8]);
        println!("{}\n", ablations::render_penalty(kind, &rows));
    }
}
