//! Ablation: value-misprediction penalty sweep on the abstract machine.

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-penalty", |opts, suite| {
        for &kind in &opts.kinds {
            let rows = ablations::penalty(suite, kind, &[0, 1, 2, 4, 8]);
            println!("{}\n", ablations::render_penalty(kind, &rows));
        }
    });
}
