//! Ablation: how much of the value-prediction ILP gain survives when the
//! paper's perfect-branch-prediction assumption is relaxed.

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-front-end", |opts, suite| {
        let rows = ablations::front_end(suite, &opts.kinds);
        println!("{}", ablations::render_front_end(&rows));
    });
}
