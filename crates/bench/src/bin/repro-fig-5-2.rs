//! Reproduces Figure 5.2: correct predictions classified correctly.

use provp_bench::run_experiment;
use provp_core::experiments::classification::{self, Which};

fn main() {
    run_experiment("repro-fig-5-2", |opts, suite| {
        println!(
            "{}",
            classification::run(suite, &opts.kinds).render(Which::CorrectPredictions)
        );
    });
}
