//! Reproduces Figure 5.2: correct predictions classified correctly.

use provp_bench::Options;
use provp_core::experiments::classification::{self, Which};

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!(
        "{}",
        classification::run(&suite, &opts.kinds).render(Which::CorrectPredictions)
    );
}
