//! Phase 2 as a command-line tool: profiles one workload under one input
//! and writes the profile image file to stdout.
//!
//! ```text
//! profile-workload <workload> [train-index|ref]
//! ```

use vp_obs::obs_error;
use vp_profile::{format, ProfileCollector};
use vp_sim::{run, RunLimits};
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        obs_error!("usage: profile-workload <workload> [train-index|ref]");
        std::process::exit(2);
    };
    let Some(kind) = WorkloadKind::from_name(&name) else {
        obs_error!("unknown workload `{name}`");
        std::process::exit(2);
    };
    let input = match args.next().as_deref() {
        None => InputSet::train(0),
        Some("ref") => InputSet::reference(),
        Some(ix) => match ix.parse() {
            Ok(i) => InputSet::train(i),
            Err(_) => {
                obs_error!("bad input selector `{ix}` (expected an index or `ref`)");
                std::process::exit(2);
            }
        },
    };
    let workload = Workload::new(kind);
    let program = workload.program(&input);
    let mut collector = ProfileCollector::new(format!("{}/{input}", workload.name()));
    run(&program, &mut collector, RunLimits::default()).expect("workload runs");
    print!("{}", format::to_text(&collector.into_image()));
}
