//! Reproduces Figure 5.4: change in incorrect predictions (finite table).

use provp_bench::Options;
use provp_core::experiments::finite_table::{self, Which};

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!(
        "{}",
        finite_table::run(&suite, &opts.kinds).render(Which::Incorrect)
    );
}
