//! Ablation: prediction-table geometry sweep (hardware vs profile
//! classification under varying table pressure).

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-geometry", |opts, suite| {
        for &kind in &opts.kinds {
            let rows = ablations::geometry(suite, kind, &[64, 128, 256, 512, 1024, 2048]);
            println!("{}\n", ablations::render_geometry(kind, &rows));
        }
    });
}
