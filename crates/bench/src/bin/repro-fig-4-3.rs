//! Reproduces Figure 4.3: profile similarity across inputs.

use provp_bench::run_experiment;
use provp_core::experiments::fig_4::{self, Which};

fn main() {
    run_experiment("repro-fig-4-3", |opts, suite| {
        println!("{}", fig_4::run(suite, &opts.kinds).render(Which::SAverage));
    });
}
