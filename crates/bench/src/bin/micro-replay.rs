//! Micro-benchmarks for the predictor replay path: AoS event replay vs
//! the columnar value-event scan, the 1/2/4/8-shard parallel merge, and
//! the fused sweep matrix vs a per-cell replay loop.
//!
//! ```text
//! cargo run --release -p provp-bench --bin micro-replay -- \
//!     [workload] [--jobs=N] [--trace-cache=DIR]
//! ```
//!
//! Captures one reference-input trace (reusing `--trace-cache=DIR`
//! across runs when given), then replays it repeatedly through the §5.2
//! hardware-baseline predictor four ways:
//!
//! - `aos`: materialised `Vec<TraceEvent>` through the full retirement
//!   tracer glue (the pre-columnar path),
//! - `columnar-replay`: the columnar trace through the same tracer glue
//!   (reconstruction cost without the `Vec<TraceEvent>` materialisation),
//! - `columnar-1shard`: the sequential value-event scan of a
//!   [`provp_core::ReplayRequest`],
//! - `columnar-Nshard`: the PC-sharded parallel scan at 2/4/8 shards.
//!
//! A second group compares sweeping a six-configuration matrix the old
//! way — one [`provp_core::ReplayRequest`] trace pass per cell — with
//! the fused kernel that decodes each value event once and updates
//! every cell's predictor bank in blocks, sequentially, PC-sharded,
//! and in bounded-memory streaming mode (`fused-stream`, which
//! re-simulates the program instead of touching the resident trace).
//!
//! Every variant's [`vp_predictor::PredictorStats`] are asserted equal
//! before timing starts — the bench doubles as an end-to-end check that
//! sharding and matrix fusion are bit-identical to a sequential
//! per-cell replay.

use std::path::PathBuf;
use std::sync::Arc;

use provp_bench::args;
use provp_bench::micro::{black_box, Group};
use provp_core::{PredictorTracer, ReplayRequest, SweepPlan, TraceStore};
use vp_obs::obs_error;
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_sim::{replay, RunLimits, Trace, TraceEvent};
use vp_workloads::{InputSet, Workload, WorkloadKind};

/// The sweep-matrix cells of the comparison group: the §5.2 baseline
/// plus the scheme/capacity ablation configurations, all sharing the
/// workload's own directive annotation.
fn sweep_configs() -> Vec<PredictorConfig> {
    let fsm = ClassifierKind::two_bit_counter();
    let geometry = TableGeometry::SPEC_512_2WAY;
    vec![
        PredictorConfig::spec_table_stride_fsm(),
        PredictorConfig::TableLastValue {
            geometry,
            classifier: fsm,
        },
        PredictorConfig::TableTwoDelta {
            geometry,
            classifier: fsm,
        },
        PredictorConfig::InfiniteStride { classifier: fsm },
        PredictorConfig::InfiniteLastValue { classifier: fsm },
        PredictorConfig::Hybrid {
            stride: geometry,
            last_value: geometry,
        },
    ]
}

struct Args {
    kind: WorkloadKind,
    jobs: usize,
    trace_cache: Option<PathBuf>,
}

fn parse_args(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        kind: WorkloadKind::Compress,
        jobs: provp_core::exec::default_jobs(),
        trace_cache: None,
    };
    for arg in args::normalize(raw, &[])? {
        if let Some(n) = arg.strip_prefix("--jobs=") {
            parsed.jobs = match n {
                "auto" => provp_core::exec::default_jobs(),
                n => n
                    .parse()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| format!("bad --jobs value `{n}` (want >= 1 or auto)"))?,
            };
        } else if let Some(dir) = arg.strip_prefix("--trace-cache=") {
            if dir.is_empty() {
                return Err("empty --trace-cache path".to_owned());
            }
            parsed.trace_cache = Some(PathBuf::from(dir));
        } else if arg.starts_with("--") {
            return Err(format!(
                "unknown argument `{arg}` (try [workload] --jobs=, --trace-cache=)"
            ));
        } else {
            parsed.kind =
                WorkloadKind::from_name(&arg).ok_or_else(|| format!("unknown workload `{arg}`"))?;
        }
    }
    Ok(parsed)
}

fn main() {
    let parsed = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            obs_error!("{msg}");
            std::process::exit(2);
        }
    };
    let Args {
        kind,
        jobs,
        trace_cache,
    } = parsed;
    let program = Workload::new(kind).program(&InputSet::reference());
    let trace: Arc<Trace> = match &trace_cache {
        Some(dir) => TraceStore::new()
            .with_spill_dir(dir.clone())
            .get(kind, InputSet::reference(), RunLimits::default())
            .expect("capture"),
        None => Arc::new(Trace::capture(&program, RunLimits::default()).expect("capture")),
    };
    let events: Vec<TraceEvent> = trace.iter().collect();
    let config = PredictorConfig::spec_table_stride_fsm();
    println!(
        "micro-replay: {kind}, {} events ({} with a destination value), {jobs} jobs",
        trace.len(),
        trace.columns().dest_count()
    );

    let single = |shards: usize, jobs: usize| {
        ReplayRequest::batch(&trace)
            .single(&program, config)
            .shards(shards)
            .jobs(jobs)
            .run()
            .expect("replay")
            .into_single()
            .outcome
    };

    // Cross-check first: every variant must produce identical statistics.
    let mut aos = PredictorTracer::new(config.build());
    replay(&program, &events, &mut aos).expect("aos replay");
    let baseline = *aos.stats();
    for shards in [1usize, 2, 4, 8] {
        let out = single(shards, jobs);
        assert_eq!(
            out.stats, baseline,
            "{shards}-shard replay diverged from the AoS baseline"
        );
    }

    let mut group = Group::new("replay").samples(10);
    group.bench("aos", || {
        let mut tracer = PredictorTracer::new(config.build());
        replay(&program, &events, &mut tracer).expect("aos replay");
        black_box(tracer.stats().hits)
    });
    group.bench("columnar-replay", || {
        let mut tracer = PredictorTracer::new(config.build());
        trace
            .replay(&program, &mut tracer)
            .expect("columnar replay");
        black_box(tracer.stats().hits)
    });
    group.bench("columnar-1shard", || black_box(single(1, 1).stats.hits));
    for shards in [2usize, 4, 8] {
        group.bench(&format!("columnar-{shards}shard"), || {
            black_box(single(shards, jobs).stats.hits)
        });
    }

    // The fused-matrix comparison: one trace pass for all six cells vs
    // one pass per cell. The equality assertion runs before timing.
    let configs = sweep_configs();
    let mut plan = SweepPlan::new();
    let table = plan.add_directives(&program);
    for &c in &configs {
        plan.add_cell(c, table);
    }
    let cell_of = |c: &PredictorConfig| {
        ReplayRequest::batch(&trace)
            .single(&program, *c)
            .run()
            .expect("replay")
            .into_single()
            .outcome
            .stats
    };
    let fused_at = |shards: usize, jobs: usize| {
        ReplayRequest::batch(&trace)
            .plan(plan.clone())
            .shards(shards)
            .jobs(jobs)
            .run()
            .expect("matrix")
            .outcomes()
    };
    let streamed_at = |shards: usize| {
        ReplayRequest::stream(&program, RunLimits::default())
            .plan(plan.clone())
            .shards(shards)
            .run()
            .expect("stream")
            .outcomes()
    };
    let per_cell: Vec<_> = configs.iter().map(cell_of).collect();
    for shards in [1usize, 4, 8] {
        let fused = fused_at(shards, jobs);
        for (cell, (f, p)) in fused.iter().zip(&per_cell).enumerate() {
            assert_eq!(
                f.stats, *p,
                "fused cell {cell} diverged from per-cell replay at {shards} shards"
            );
        }
        let streamed = streamed_at(shards);
        for (cell, (s, p)) in streamed.iter().zip(&per_cell).enumerate() {
            assert_eq!(
                s.stats, *p,
                "streamed cell {cell} diverged from per-cell replay at {shards} shards"
            );
        }
    }
    println!(
        "sweep matrix: {} cells, one fused trace pass vs {} per-cell passes",
        plan.cells().len(),
        configs.len()
    );

    let mut group = Group::new("sweep").samples(10);
    group.bench("per-cell", || {
        black_box(configs.iter().map(|c| cell_of(c).hits).sum::<u64>())
    });
    group.bench("fused-1shard", || {
        black_box(fused_at(1, 1).iter().map(|o| o.stats.hits).sum::<u64>())
    });
    for shards in [4usize, 8] {
        group.bench(&format!("fused-{shards}shard"), || {
            black_box(
                fused_at(shards, jobs)
                    .iter()
                    .map(|o| o.stats.hits)
                    .sum::<u64>(),
            )
        });
    }
    // Streaming pays a fresh simulation per pass but holds no trace:
    // this is the "trace larger than RAM" configuration, timed against
    // the batch kernel on the same plan.
    group.bench(&format!("fused-stream-{jobs}shard"), || {
        black_box(
            streamed_at(jobs.max(2))
                .iter()
                .map(|o| o.stats.hits)
                .sum::<u64>(),
        )
    });
}
