//! Micro-benchmarks for the predictor replay path: AoS event replay vs
//! the columnar value-event scan, and the 1/2/4/8-shard parallel merge.
//!
//! ```text
//! cargo run --release -p provp-bench --bin micro-replay [workload]
//! ```
//!
//! Captures one reference-input trace, then replays it repeatedly through
//! the §5.2 hardware-baseline predictor four ways:
//!
//! - `aos`: materialised `Vec<TraceEvent>` through the full retirement
//!   tracer glue (the pre-columnar path),
//! - `columnar-replay`: the columnar trace through the same tracer glue
//!   (reconstruction cost without the `Vec<TraceEvent>` materialisation),
//! - `columnar-1shard`: the sequential value-event scan of
//!   [`provp_core::replay_predictor`],
//! - `columnar-Nshard`: the PC-sharded parallel scan at 2/4/8 shards.
//!
//! Every variant's [`vp_predictor::PredictorStats`] are asserted equal
//! before timing starts — the bench doubles as an end-to-end check that
//! sharding is bit-identical to a sequential replay.

use provp_bench::micro::{black_box, Group};
use provp_core::{replay_predictor, PredictorTracer};
use vp_predictor::PredictorConfig;
use vp_sim::{replay, RunLimits, Trace, TraceEvent};
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn main() {
    let kind = std::env::args()
        .nth(1)
        .map(|name| {
            WorkloadKind::from_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"))
        })
        .unwrap_or(WorkloadKind::Compress);
    let program = Workload::new(kind).program(&InputSet::reference());
    let trace = Trace::capture(&program, RunLimits::default()).expect("capture");
    let events: Vec<TraceEvent> = trace.iter().collect();
    let config = PredictorConfig::spec_table_stride_fsm();
    println!(
        "micro-replay: {kind}, {} events ({} with a destination value)",
        trace.len(),
        trace.columns().dest_count()
    );

    // Cross-check first: every variant must produce identical statistics.
    let mut aos = PredictorTracer::new(config.build());
    replay(&program, &events, &mut aos).expect("aos replay");
    let baseline = *aos.stats();
    for shards in [1usize, 2, 4, 8] {
        let out = replay_predictor(&trace, &program, &config, shards, shards).expect("replay");
        assert_eq!(
            out.stats, baseline,
            "{shards}-shard replay diverged from the AoS baseline"
        );
    }

    let mut group = Group::new("replay").samples(10);
    group.bench("aos", || {
        let mut tracer = PredictorTracer::new(config.build());
        replay(&program, &events, &mut tracer).expect("aos replay");
        black_box(tracer.stats().hits)
    });
    group.bench("columnar-replay", || {
        let mut tracer = PredictorTracer::new(config.build());
        trace
            .replay(&program, &mut tracer)
            .expect("columnar replay");
        black_box(tracer.stats().hits)
    });
    group.bench("columnar-1shard", || {
        black_box(
            replay_predictor(&trace, &program, &config, 1, 1)
                .expect("replay")
                .stats
                .hits,
        )
    });
    for shards in [2usize, 4, 8] {
        group.bench(&format!("columnar-{shards}shard"), || {
            black_box(
                replay_predictor(&trace, &program, &config, shards, shards)
                    .expect("replay")
                    .stats
                    .hits,
            )
        });
    }
}
