//! Ablation: splitting one entry budget between the hybrid predictor's
//! stride and last-value sides.

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-hybrid", |opts, suite| {
        for &kind in &opts.kinds {
            let rows = ablations::hybrid_split(suite, kind, 512);
            println!("{}\n", ablations::render_hybrid(kind, &rows));
        }
    });
}
