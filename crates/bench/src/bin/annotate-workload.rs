//! Phase 3 as a command-line tool: reads a profile image file from stdin,
//! annotates the named workload's binary at the given threshold, and
//! prints the annotated assembly.
//!
//! ```text
//! profile-workload gcc 0 | annotate-workload gcc 0.9
//! ```

use std::io::Read;
use vp_obs::obs_error;

use vp_compiler::{annotate, ThresholdPolicy};
use vp_profile::format;
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(name), threshold) = (args.next(), args.next()) else {
        obs_error!("usage: annotate-workload <workload> [threshold] < profile.txt");
        std::process::exit(2);
    };
    let Some(kind) = WorkloadKind::from_name(&name) else {
        obs_error!("unknown workload `{name}`");
        std::process::exit(2);
    };
    let threshold: f64 = threshold
        .as_deref()
        .unwrap_or("0.9")
        .parse()
        .unwrap_or_else(|_| {
            obs_error!("bad threshold");
            std::process::exit(2);
        });

    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .expect("read stdin");
    let image = match format::from_text(&text) {
        Ok(img) => img,
        Err(e) => {
            obs_error!("bad profile image: {e}");
            std::process::exit(1);
        }
    };

    let program = Workload::new(kind)
        .program(&InputSet::train(0))
        .without_directives();
    let out = annotate(&program, &image, &ThresholdPolicy::new(threshold));
    eprintln!("{}", out.summary());
    print!("{}", out.program());
}
