//! Renders the `attribution` array of a `provp-run-manifest/v3`
//! document: the hottest mispredicting PCs per attributed run, their
//! misprediction-cause breakdown and their profile drift (promised
//! training-profile accuracy minus observed replay accuracy).
//!
//! ```text
//! attribution-report --manifest=/tmp/manifest.json \
//!                    [--format=table|json|markdown] [--top=N]
//! ```
//!
//! - `--format=table` (default) prints an aligned text report;
//! - `--format=markdown` prints GitHub-flavoured tables (pipe into
//!   `$GITHUB_STEP_SUMMARY`);
//! - `--format=json` prints the attribution array alone as JSON.
//! - `--top=N` limits table/markdown output to the N hottest PCs per
//!   run (default 10; 0 means every PC the manifest carries; JSON is
//!   never truncated).
//!
//! Both flag forms (`--flag=V` and `--flag V`) are accepted. Like
//! `manifest-diff`, this is a reporting tool: the report goes to stdout.
//!
//! Exit status: 0 on success (including a manifest with no attribution,
//! which reports how to collect some), 2 on usage/read/parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use vp_obs::attribution::{render_report_markdown, render_report_table};
use vp_obs::json::Json;
use vp_obs::{obs_error, RunManifest};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
    Markdown,
}

struct Args {
    manifest: PathBuf,
    format: Format,
    top: usize,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut manifest = None;
    let mut format = Format::Table;
    let mut top = 10usize;
    for arg in provp_bench::args::normalize(args, &[])? {
        if let Some(p) = arg.strip_prefix("--manifest=") {
            manifest = Some(PathBuf::from(p));
        } else if let Some(f) = arg.strip_prefix("--format=") {
            format = match f {
                "table" => Format::Table,
                "json" => Format::Json,
                "markdown" => Format::Markdown,
                other => {
                    return Err(format!(
                        "bad --format value `{other}` (want table, json or markdown)"
                    ))
                }
            };
        } else if let Some(n) = arg.strip_prefix("--top=") {
            top = n
                .parse()
                .map_err(|_| format!("bad --top value `{n}` (want an integer; 0 = unlimited)"))?;
        } else {
            return Err(format!(
                "unknown argument `{arg}` (try --manifest=, --format=, --top=)"
            ));
        }
    }
    Ok(Args {
        manifest: manifest.ok_or("missing --manifest=FILE")?,
        format,
        top,
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            obs_error!("{msg}");
            return ExitCode::from(2);
        }
    };
    let manifest = match std::fs::read_to_string(&args.manifest)
        .map_err(|e| format!("cannot read {:?}: {e}", args.manifest))
        .and_then(|text| {
            RunManifest::parse(text.trim_end())
                .map_err(|e| format!("cannot parse {:?}: {e}", args.manifest))
        }) {
        Ok(m) => m,
        Err(e) => {
            obs_error!("{e}");
            return ExitCode::from(2);
        }
    };

    if manifest.attribution.is_empty() {
        match args.format {
            Format::Json => println!("[]"),
            _ => println!(
                "attribution-report: {:?} carries no attribution data; rerun the \
                 experiment with --attribution --metrics-out=... to collect some",
                args.manifest
            ),
        }
        return ExitCode::SUCCESS;
    }

    match args.format {
        Format::Table => print!("{}", render_report_table(&manifest.attribution, args.top)),
        Format::Markdown => print!(
            "{}",
            render_report_markdown(&manifest.attribution, args.top)
        ),
        Format::Json => println!(
            "{}",
            Json::Arr(manifest.attribution.iter().map(|r| r.to_json()).collect())
        ),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_in_both_forms() {
        let a = parse_args([
            "--manifest".to_owned(),
            "m.json".to_owned(),
            "--format=markdown".to_owned(),
            "--top".to_owned(),
            "3".to_owned(),
        ])
        .unwrap();
        assert_eq!(a.manifest, PathBuf::from("m.json"));
        assert_eq!(a.format, Format::Markdown);
        assert_eq!(a.top, 3);

        let a = parse_args(["--manifest=m".to_owned()]).unwrap();
        assert_eq!(a.format, Format::Table);
        assert_eq!(a.top, 10);

        assert!(parse_args([]).is_err());
        assert!(parse_args(["--manifest=m".to_owned(), "--format=yaml".to_owned()]).is_err());
        assert!(parse_args(["--manifest=m".to_owned(), "--top=half".to_owned()]).is_err());
    }
}
