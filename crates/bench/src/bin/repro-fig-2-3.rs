//! Reproduces Figure 2.3: the spread of instructions by stride efficiency.

use provp_bench::run_experiment;
use provp_core::experiments::fig_2_3;

fn main() {
    run_experiment("repro-fig-2-3", |opts, suite| {
        println!("{}", fig_2_3::run(suite, &opts.kinds).render());
    });
}
