//! Reproduces Figure 2.3: the spread of instructions by stride efficiency.

use provp_bench::Options;
use provp_core::experiments::fig_2_3;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    println!("{}", fig_2_3::run(&suite, &opts.kinds).render());
}
