//! Ablation: last-value vs stride vs two-delta stride predictors on the
//! paper's table configuration.

use provp_bench::Options;
use provp_core::experiments::ablations;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    let rows = ablations::schemes(&suite, &opts.kinds);
    println!("{}", ablations::render_schemes(&rows));
}
