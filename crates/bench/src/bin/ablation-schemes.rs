//! Ablation: last-value vs stride vs two-delta stride predictors on the
//! paper's table configuration.

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-schemes", |opts, suite| {
        let rows = ablations::schemes(suite, &opts.kinds);
        println!("{}", ablations::render_schemes(&rows));
    });
}
