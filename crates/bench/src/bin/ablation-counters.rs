//! Ablation: saturating-counter configurations for the hardware
//! classifier.

use provp_bench::Options;
use provp_core::experiments::ablations;

fn main() {
    let opts = Options::from_env();
    let suite = opts.suite();
    for &kind in &opts.kinds {
        let rows = ablations::counters(&suite, kind);
        println!("{}\n", ablations::render_counters(kind, &rows));
    }
}
