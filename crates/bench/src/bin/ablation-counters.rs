//! Ablation: saturating-counter configurations for the hardware
//! classifier.

use provp_bench::run_experiment;
use provp_core::experiments::ablations;

fn main() {
    run_experiment("ablation-counters", |opts, suite| {
        for &kind in &opts.kinds {
            let rows = ablations::counters(suite, kind);
            println!("{}\n", ablations::render_counters(kind, &rows));
        }
    });
}
