//! A dependency-free micro-benchmark harness (Criterion is unavailable in
//! the offline build environment).
//!
//! Each benchmark runs a warm-up call followed by a fixed number of timed
//! samples and prints the minimum / mean / maximum wall-clock time per
//! sample. No statistics beyond that: the numbers are for spotting
//! order-of-magnitude regressions, not microsecond-level noise.
//!
//! # Examples
//!
//! ```
//! use provp_bench::micro::{black_box, Group};
//! let mut g = Group::new("demo").samples(3);
//! g.bench("sum", || black_box((0..1000u64).sum::<u64>()));
//! ```

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`.
pub struct Group {
    name: String,
    samples: u32,
}

impl Group {
    /// A group with the default sample count (10).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            samples: 10,
        }
    }

    /// Overrides the number of timed samples.
    #[must_use]
    pub fn samples(mut self, samples: u32) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    /// Times `f` and prints `group/id: min … mean … max` per sample.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        let min = *times.iter().min().expect("samples > 0");
        let max = *times.iter().max().expect("samples > 0");
        let mean = times.iter().sum::<Duration>() / self.samples;
        println!(
            "{}/{id}: min {} | mean {} | max {} ({} samples)",
            self.name,
            fmt(min),
            fmt(mean),
            fmt(max),
            self.samples
        );
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut g = Group::new("test").samples(2);
        let mut calls = 0u32;
        g.bench("noop", || calls += 1);
        assert_eq!(calls, 3); // warm-up + 2 samples
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt(Duration::from_secs(2)), "2.000 s");
    }
}
