//! Property tests for the trace file format: round-trip fidelity and
//! robustness against corrupted inputs (a malformed trace must error, never
//! panic or hang).

use vp_isa::{InstrAddr, Reg, RegClass};
use vp_rng::{prop, Rng};
use vp_sim::record::{read_trace, write_trace, write_trace_legacy_v1, TraceEvent};
use vp_sim::{MemAccess, Trace, TraceError};

fn arb_event(rng: &mut Rng) -> TraceEvent {
    let mem = rng.gen_bool(0.5).then(|| MemAccess {
        addr: rng.gen_u64(),
        store: rng.gen_bool(0.5),
    });
    let stored = match mem {
        Some(MemAccess { store: true, .. }) => Some(0xabcd),
        _ => None,
    };
    TraceEvent {
        addr: InstrAddr::new(rng.gen_range(0..=u32::MAX)),
        dest: rng.gen_bool(0.5).then(|| {
            (
                if rng.gen_bool(0.5) {
                    RegClass::Fp
                } else {
                    RegClass::Int
                },
                Reg::new(rng.gen_range(0..32u8)),
                rng.gen_u64(),
            )
        }),
        mem,
        stored,
        taken: rng.gen_bool(0.5).then(|| rng.gen_bool(0.5)),
        next_pc: InstrAddr::new(rng.gen_range(0..=u32::MAX)),
    }
}

fn arb_events(rng: &mut Rng, lo: usize, hi: usize) -> Vec<TraceEvent> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| arb_event(rng)).collect()
}

#[test]
fn prop_round_trip() {
    prop::forall("trace serialisation round-trips", |rng| {
        arb_events(rng, 0, 200)
    })
    .check(|events| {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, events).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(&back, events);
    });
}

/// Truncating a valid trace anywhere must produce an error, not a panic
/// (and certainly not a silently short parse that claims success with the
/// original event count).
#[test]
fn prop_truncation_is_detected() {
    prop::forall("trace truncation is detected", |rng| {
        (arb_events(rng, 1, 50), rng.gen_f64())
    })
    .check(|(events, cut_fraction)| {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, events).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            bytes.truncate(cut);
            assert!(read_trace(bytes.as_slice()).is_err());
        }
    });
}

/// Files written in the legacy fixed-width v1 format (`provptr1`) must
/// keep reading back event-for-event through the current reader — on-disk
/// trace caches written before the columnar format survive an upgrade.
#[test]
fn prop_legacy_v1_spill_files_read_back() {
    prop::forall("legacy v1 spill files read back", |rng| {
        arb_events(rng, 0, 120)
    })
    .check(|events| {
        let mut bytes = Vec::new();
        write_trace_legacy_v1(&mut bytes, events).unwrap();
        assert_eq!(&bytes[..8], b"provptr1");
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(&back, events);
    });
}

/// The checksummed columnar v3 format round-trips through the [`Trace`]
/// wrapper, and truncating the byte stream surfaces as a typed
/// [`TraceError`] (never a panic, never a silently short parse).
#[test]
fn prop_columnar_trace_round_trips_and_detects_truncation() {
    prop::forall("columnar trace round-trips", |rng| {
        (arb_events(rng, 1, 120), rng.gen_f64())
    })
    .check(|(events, cut_fraction)| {
        let trace = Trace::from_events(events.clone());
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        assert_eq!(&bytes[..8], b"provptr3");
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.columns(), trace.columns());

        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            bytes.truncate(cut);
            let err = Trace::read_from(bytes.as_slice()).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::BadMagic
                        | TraceError::Truncated { .. }
                        | TraceError::Corrupt { .. }
                        | TraceError::Io(_)
                ),
                "unexpected error shape: {err}"
            );
        }
    });
}

/// Flipping bytes after the header may change events or error, but must
/// never panic.
#[test]
fn prop_corruption_never_panics() {
    prop::forall("trace corruption never panics", |rng| {
        let events = arb_events(rng, 1, 30);
        let flips: Vec<(u64, u8)> = (0..rng.gen_range(1..8usize))
            .map(|_| (rng.gen_u64(), rng.gen_range(0..=u8::MAX)))
            .collect();
        (events, flips)
    })
    .check(|(events, flips)| {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, events).unwrap();
        for &(idx, value) in flips {
            let i = (idx % bytes.len() as u64) as usize;
            bytes[i] ^= value;
        }
        let _ = read_trace(bytes.as_slice()); // Ok or Err, both fine.
    });
}
