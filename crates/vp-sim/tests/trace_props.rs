//! Property tests for the trace file format: round-trip fidelity and
//! robustness against corrupted inputs (a malformed trace must error, never
//! panic or hang).

use proptest::prelude::*;
use vp_isa::{InstrAddr, Reg, RegClass};
use vp_sim::record::{read_trace, write_trace, TraceEvent};
use vp_sim::MemAccess;

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u32>(),
        prop::option::of((any::<bool>(), 0u8..32, any::<u64>())),
        prop::option::of((any::<u64>(), any::<bool>())),
        prop::option::of(any::<bool>()),
        any::<u32>(),
    )
        .prop_map(|(addr, dest, mem, taken, next_pc)| {
            let mem = mem.map(|(addr, store)| MemAccess { addr, store });
            let stored = match mem {
                Some(MemAccess { store: true, .. }) => Some(0xabcd),
                _ => None,
            };
            TraceEvent {
                addr: InstrAddr::new(addr),
                dest: dest.map(|(fp, reg, value)| {
                    (
                        if fp { RegClass::Fp } else { RegClass::Int },
                        Reg::new(reg),
                        value,
                    )
                }),
                mem,
                stored,
                taken,
                next_pc: InstrAddr::new(next_pc),
            }
        })
}

proptest! {
    #[test]
    fn prop_round_trip(events in prop::collection::vec(arb_event(), 0..200)) {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        prop_assert_eq!(back, events);
    }

    /// Truncating a valid trace anywhere must produce an error, not a
    /// panic (and certainly not a silently short parse that claims
    /// success with the original event count).
    #[test]
    fn prop_truncation_is_detected(
        events in prop::collection::vec(arb_event(), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            bytes.truncate(cut);
            prop_assert!(read_trace(bytes.as_slice()).is_err());
        }
    }

    /// Flipping bytes after the header may change events or error, but
    /// must never panic.
    #[test]
    fn prop_corruption_never_panics(
        events in prop::collection::vec(arb_event(), 1..30),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        for (idx, value) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= value;
        }
        let _ = read_trace(bytes.as_slice()); // Ok or Err, both fine.
    }
}
