//! Fault injection for the spill-file readers: every way a trace file can
//! rot on disk — truncation, single-bit flips, multi-byte scribbles — must
//! surface as a typed [`TraceError`], never a panic and never silently
//! wrong data.
//!
//! The current `provptr3` format carries an FNV-1a-64 checksum over its
//! body precisely so this holds: without it, a bit flip in a delta-encoded
//! value column decodes to plausible-but-wrong values. The legacy
//! unchecksummed formats only guarantee "no panic".

use vp_rng::prop;
use vp_sim::record::{read_columns, write_columns, write_columns_legacy_v2};
use vp_sim::{RunLimits, TraceColumns};
use vp_sim::{Trace, TraceError};

/// A small but representative trace: a loop with integer and FP dest
/// writes, loads, stores and both branch outcomes.
fn sample_columns() -> TraceColumns {
    let p = vp_isa::asm::assemble(
        ".f64 1.5\n\
         li r1, 0\n\
         li r2, 12\n\
         top: fld f1, (r0)\n\
         fadd f2, f2, f1\n\
         sd r1, 5(r1)\n\
         ld r3, 5(r1)\n\
         addi r1, r1, 1\n\
         bne r1, r2, top\n\
         halt\n",
    )
    .unwrap();
    Trace::capture(&p, RunLimits::default())
        .unwrap()
        .columns()
        .clone()
}

fn encode(cols: &TraceColumns) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_columns(&mut bytes, cols).unwrap();
    bytes
}

/// Asserts the outcome of reading a corrupted stream: a typed error is
/// fine, and `Ok` is fine only when the decoded columns equal the
/// original (e.g. a magic flip that lands on a sibling version whose body
/// decodes identically). `Ok` with *different* data is the silent
/// corruption this suite exists to rule out.
fn assert_err_or_identical(bytes: &[u8], original: &TraceColumns, what: &str) {
    match read_columns(bytes) {
        Ok(cols) => assert_eq!(&cols, original, "silent wrong data after {what}"),
        Err(
            TraceError::BadMagic
            | TraceError::AbsurdLength { .. }
            | TraceError::Truncated { .. }
            | TraceError::Corrupt { .. }
            | TraceError::Io(_),
        ) => {}
    }
}

/// Exhaustive single-bit flips: all 8 bit positions of every byte.
#[test]
fn every_single_bit_flip_is_caught_or_harmless() {
    let cols = sample_columns();
    let pristine = encode(&cols);
    let mut bytes = pristine.clone();
    for i in 0..bytes.len() {
        for bit in 0..8u8 {
            bytes[i] ^= 1 << bit;
            assert_err_or_identical(&bytes, &cols, &format!("flipping bit {bit} of byte {i}"));
            bytes[i] ^= 1 << bit;
        }
    }
    assert_eq!(bytes, pristine);
}

/// Exhaustive truncation: every proper prefix must fail (the checksum
/// trailer is mandatory in `provptr3`, so even a clean body cut fails).
#[test]
fn every_truncation_is_a_typed_error() {
    let cols = sample_columns();
    let bytes = encode(&cols);
    for cut in 0..bytes.len() {
        match read_columns(&bytes[..cut]) {
            Err(
                TraceError::BadMagic
                | TraceError::AbsurdLength { .. }
                | TraceError::Truncated { .. }
                | TraceError::Corrupt { .. }
                | TraceError::Io(_),
            ) => {}
            Ok(_) => panic!("truncation to {cut}/{} bytes read back Ok", bytes.len()),
        }
    }
}

/// Randomized multi-byte corruption of the current format: any number of
/// scribbles anywhere in the stream.
#[test]
fn prop_random_scribbles_never_panic_or_lie() {
    let cols = sample_columns();
    let pristine = encode(&cols);
    prop::forall("provptr3 scribbles are caught or harmless", |rng| {
        (0..rng.gen_range(1..16usize))
            .map(|_| (rng.gen_u64(), rng.gen_range(1..=u8::MAX)))
            .collect::<Vec<(u64, u8)>>()
    })
    .check_shrinking(|scribbles| {
        let mut bytes = pristine.clone();
        for &(pos, xor) in scribbles {
            let i = (pos % bytes.len() as u64) as usize;
            bytes[i] ^= xor;
        }
        assert_err_or_identical(&bytes, &cols, "random scribbles");
    });
}

/// The legacy unchecksummed `provptr2` reader keeps its weaker guarantee:
/// corrupted streams may decode to different data, but never panic.
#[test]
fn prop_legacy_v2_corruption_never_panics() {
    let cols = sample_columns();
    let mut pristine = Vec::new();
    write_columns_legacy_v2(&mut pristine, &cols).unwrap();
    prop::forall("legacy v2 scribbles never panic", |rng| {
        (0..rng.gen_range(1..16usize))
            .map(|_| (rng.gen_u64(), rng.gen_range(1..=u8::MAX)))
            .collect::<Vec<(u64, u8)>>()
    })
    .check(|scribbles| {
        let mut bytes = pristine.clone();
        for &(pos, xor) in scribbles {
            let i = (pos % bytes.len() as u64) as usize;
            bytes[i] ^= xor;
        }
        let _ = read_columns(bytes.as_slice()); // Ok or Err, both fine.
    });
}
