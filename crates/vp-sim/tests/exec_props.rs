//! Differential property test: the simulator's integer ALU semantics match
//! an independent host-side model for arbitrary straight-line programs.

use vp_isa::{Instr, Opcode, Program, Reg, RegClass};
use vp_rng::{prop, Rng};
use vp_sim::{Machine, NullTracer, RunLimits};

#[derive(Debug, Clone, Copy)]
struct Op {
    code: u8, // selects the opcode
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: i32,
}

const RR_OPS: [Opcode; 13] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
];

const RI_OPS: [Opcode; 9] = [
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Slti,
    Opcode::Muli,
];

fn lower(op: Op) -> Instr {
    let rd = Reg::new(op.rd % 32);
    let rs1 = Reg::new(op.rs1 % 32);
    let rs2 = Reg::new(op.rs2 % 32);
    if op.code.is_multiple_of(3) {
        Instr::rd_imm(Opcode::Li, rd, i64::from(op.imm))
    } else if op.code % 3 == 1 {
        Instr::alu_rr(RR_OPS[(op.code as usize / 3) % RR_OPS.len()], rd, rs1, rs2)
    } else {
        Instr::alu_ri(
            RI_OPS[(op.code as usize / 3) % RI_OPS.len()],
            rd,
            rs1,
            i64::from(op.imm),
        )
    }
}

/// Independent interpretation of the same instruction on a host register
/// file (written from the ISA documentation, not from the simulator code).
fn model(regs: &mut [u64; 32], instr: &Instr) {
    let r = |reg: Reg| {
        if reg.is_zero() {
            0
        } else {
            regs[usize::from(reg)]
        }
    };
    let (a, b) = (r(instr.rs1), r(instr.rs2));
    let (sa, sb) = (a as i64, b as i64);
    let imm = instr.imm;
    let v = match instr.op {
        Opcode::Li => imm as u64,
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            if sb == 0 {
                0
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        Opcode::Rem => {
            if sb == 0 {
                sa as u64
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Sll => a << (b & 63),
        Opcode::Srl => a >> (b & 63),
        Opcode::Sra => (sa >> (b & 63)) as u64,
        Opcode::Slt => u64::from(sa < sb),
        Opcode::Sltu => u64::from(a < b),
        Opcode::Addi => a.wrapping_add(imm as u64),
        Opcode::Andi => a & imm as u64,
        Opcode::Ori => a | imm as u64,
        Opcode::Xori => a ^ imm as u64,
        Opcode::Slli => a << (imm as u64 & 63),
        Opcode::Srli => a >> (imm as u64 & 63),
        Opcode::Srai => (sa >> (imm as u64 & 63)) as u64,
        Opcode::Slti => u64::from(sa < imm),
        Opcode::Muli => a.wrapping_mul(imm as u64),
        other => unreachable!("not generated: {other}"),
    };
    if !instr.rd.is_zero() {
        regs[usize::from(instr.rd)] = v;
    }
}

fn arb_op(rng: &mut Rng) -> Op {
    Op {
        code: rng.gen_range(0..=u8::MAX),
        rd: rng.gen_range(0..=u8::MAX),
        rs1: rng.gen_range(0..=u8::MAX),
        rs2: rng.gen_range(0..=u8::MAX),
        imm: rng.gen_range(i32::MIN..=i32::MAX),
    }
}

#[test]
fn prop_simulator_matches_independent_model() {
    prop::forall("simulator matches independent ALU model", |rng| {
        let len = rng.gen_range(1..200usize);
        (0..len).map(|_| arb_op(rng)).collect::<Vec<Op>>()
    })
    .cases(128)
    .check(|ops| {
        let mut text: Vec<Instr> = ops.iter().map(|&op| lower(op)).collect();
        text.push(Instr::halt());
        let program = Program::new("diff", text.clone(), vec![]);

        // Simulator execution.
        let mut machine = Machine::for_program(&program);
        vp_sim::runner::run_on(
            &mut machine,
            &program,
            &mut NullTracer,
            RunLimits::default(),
        )
        .unwrap();

        // Host model.
        let mut regs = [0u64; 32];
        for instr in &text[..text.len() - 1] {
            model(&mut regs, instr);
        }

        for i in 0..32u8 {
            assert_eq!(
                machine.read_reg(RegClass::Int, Reg::new(i)),
                regs[i as usize],
                "register r{i} diverged"
            );
        }
    });
}
