//! Dynamic instruction-mix accounting.

use std::fmt;

use vp_isa::OpCategory;

use crate::{Retirement, Tracer};

/// Counts retired instructions by [`OpCategory`].
///
/// Useful both as a sanity check on workloads (e.g. that an FP workload
/// actually retires FP instructions) and for normalising experiment output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    int_alu: u64,
    int_load: u64,
    fp_alu: u64,
    fp_load: u64,
    store: u64,
    branch: u64,
    jump: u64,
    system: u64,
}

impl InstrMix {
    /// An empty mix.
    #[must_use]
    pub fn new() -> Self {
        InstrMix::default()
    }

    /// Records one retired instruction.
    pub fn record(&mut self, cat: OpCategory) {
        match cat {
            OpCategory::IntAlu => self.int_alu += 1,
            OpCategory::IntLoad => self.int_load += 1,
            OpCategory::FpAlu => self.fp_alu += 1,
            OpCategory::FpLoad => self.fp_load += 1,
            OpCategory::Store => self.store += 1,
            OpCategory::Branch => self.branch += 1,
            OpCategory::Jump => self.jump += 1,
            OpCategory::System => self.system += 1,
        }
    }

    /// Count for one category.
    #[must_use]
    pub fn count(&self, cat: OpCategory) -> u64 {
        match cat {
            OpCategory::IntAlu => self.int_alu,
            OpCategory::IntLoad => self.int_load,
            OpCategory::FpAlu => self.fp_alu,
            OpCategory::FpLoad => self.fp_load,
            OpCategory::Store => self.store,
            OpCategory::Branch => self.branch,
            OpCategory::Jump => self.jump,
            OpCategory::System => self.system,
        }
    }

    /// Total retired instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.int_load
            + self.fp_alu
            + self.fp_load
            + self.store
            + self.branch
            + self.jump
            + self.system
    }

    /// Retired instructions that produced a register value (the
    /// value-prediction candidate stream). Jumps write link registers but
    /// the simulator reports `jal r0, …` writes as discarded, so this is an
    /// upper bound used only for reporting.
    #[must_use]
    pub fn value_producing(&self) -> u64 {
        self.int_alu + self.int_load + self.fp_alu + self.fp_load + self.jump
    }

    /// Fraction of the dynamic stream in `cat`, or 0 for an empty mix.
    #[must_use]
    pub fn fraction(&self, cat: OpCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(cat) as f64 / total as f64
        }
    }
}

impl Tracer for InstrMix {
    fn retire(&mut self, ev: &Retirement<'_>) {
        self.record(ev.instr.op.category());
    }
}

impl fmt::Display for InstrMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "int-alu {} | int-load {} | fp-alu {} | fp-load {} | store {} | branch {} | jump {} | system {}",
            self.int_alu,
            self.int_load,
            self.fp_alu,
            self.fp_load,
            self.store,
            self.branch,
            self.jump,
            self.system
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, RunLimits};
    use vp_isa::asm::assemble;

    #[test]
    fn mix_counts_by_category() {
        let p = assemble(".f64 1.0\nli r1, 4\nld r2, (r0)\nfld f1, (r0)\nfadd f2, f1, f1\nsd r1, 9(r0)\nbeq r0, r0, skip\nskip: halt\n").unwrap();
        let mut mix = InstrMix::new();
        run(&p, &mut mix, RunLimits::default()).unwrap();
        assert_eq!(mix.count(OpCategory::IntAlu), 1);
        assert_eq!(mix.count(OpCategory::IntLoad), 1);
        assert_eq!(mix.count(OpCategory::FpLoad), 1);
        assert_eq!(mix.count(OpCategory::FpAlu), 1);
        assert_eq!(mix.count(OpCategory::Store), 1);
        assert_eq!(mix.count(OpCategory::Branch), 1);
        assert_eq!(mix.count(OpCategory::System), 1);
        assert_eq!(mix.total(), 7);
        assert!((mix.fraction(OpCategory::Store) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_fraction_is_zero() {
        assert_eq!(InstrMix::new().fraction(OpCategory::IntAlu), 0.0);
    }
}
