//! The top-level run loop.

use std::fmt;

use vp_isa::Program;

use crate::exec::{step, StepOutcome};
use crate::{Machine, SimError, Tracer};

/// Execution limits for a run.
///
/// The default budget (50 million instructions) comfortably covers every
/// workload in `vp-workloads` while still catching accidental infinite
/// loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum number of instructions to retire before stopping.
    pub max_instructions: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_instructions: 50_000_000,
        }
    }
}

impl RunLimits {
    /// A budget of exactly `max_instructions`.
    #[must_use]
    pub fn with_max(max_instructions: u64) -> Self {
        RunLimits { max_instructions }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program executed `halt`.
    Halted,
    /// The instruction budget ran out first.
    BudgetExhausted,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    instructions: u64,
    status: RunStatus,
}

impl RunSummary {
    /// Dynamic instructions retired.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Why the run stopped.
    #[must_use]
    pub fn status(&self) -> RunStatus {
        self.status
    }

    /// Whether the program reached `halt`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.status == RunStatus::Halted
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions, {}",
            self.instructions,
            match self.status {
                RunStatus::Halted => "halted",
                RunStatus::BudgetExhausted => "budget exhausted",
            }
        )
    }
}

/// Runs `program` from a fresh machine until `halt` or the budget expires,
/// delivering each retirement to `tracer`.
///
/// # Errors
///
/// Propagates [`SimError`] faults (PC leaving the text segment, branch
/// target overflow).
pub fn run(
    program: &Program,
    tracer: &mut impl Tracer,
    limits: RunLimits,
) -> Result<RunSummary, SimError> {
    let mut machine = Machine::for_program(program);
    run_on(&mut machine, program, tracer, limits)
}

/// Like [`run`], but continues an existing machine (useful for phase-split
/// measurements such as the paper's FP init vs. computation phases).
///
/// # Errors
///
/// Propagates [`SimError`] faults.
pub fn run_on(
    machine: &mut Machine,
    program: &Program,
    tracer: &mut impl Tracer,
    limits: RunLimits,
) -> Result<RunSummary, SimError> {
    let started = std::time::Instant::now();
    let mut retired = 0u64;
    let status = loop {
        if retired >= limits.max_instructions {
            break RunStatus::BudgetExhausted;
        }
        let outcome = step(machine, program, |ev| tracer.retire(ev))?;
        retired += 1;
        if outcome == StepOutcome::Halted {
            break RunStatus::Halted;
        }
    };
    // Throughput accounting for the observability layer: one bump per
    // completed run, outside the retire loop, so per-instruction cost is
    // untouched.
    vp_obs::counter("sim.runs").add(1);
    vp_obs::counter("sim.instructions").add(retired);
    vp_obs::counter("sim.wall_ns")
        .add(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    Ok(RunSummary {
        instructions: retired,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullTracer;
    use vp_isa::asm::assemble;

    #[test]
    fn halting_program_reports_exact_count() {
        let p = assemble("li r1, 5\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n").unwrap();
        let s = run(&p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(s.halted());
        // li + 5*(addi+bne) + halt
        assert_eq!(s.instructions(), 12);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let p = assemble("top: beq r0, r0, top\nhalt\n").unwrap();
        let s = run(&p, &mut NullTracer, RunLimits::with_max(1000)).unwrap();
        assert_eq!(s.status(), RunStatus::BudgetExhausted);
        assert_eq!(s.instructions(), 1000);
    }

    #[test]
    fn run_on_resumes_machine_state() {
        let p = assemble("li r1, 2\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n").unwrap();
        let mut m = Machine::for_program(&p);
        // First, a budget that stops mid-loop.
        let s1 = run_on(&mut m, &p, &mut NullTracer, RunLimits::with_max(3)).unwrap();
        assert_eq!(s1.status(), RunStatus::BudgetExhausted);
        // Resume to completion.
        let s2 = run_on(&mut m, &p, &mut NullTracer, RunLimits::default()).unwrap();
        assert!(s2.halted());
        // li + 2*(addi+bne) + halt = 6 total across both segments.
        assert_eq!(s1.instructions() + s2.instructions(), 6);
    }

    #[test]
    fn fault_is_propagated() {
        let p = assemble("nop\n").unwrap();
        let e = run(&p, &mut NullTracer, RunLimits::default()).unwrap_err();
        assert!(matches!(e, SimError::PcOutOfRange { .. }));
    }
}
