//! Simulator fault conditions.

use std::error::Error;
use std::fmt;

use vp_isa::InstrAddr;

/// A fault raised during simulation.
///
/// The ISA semantics are deliberately trap-free for arithmetic (division by
/// zero is defined, shifts mask their amount), so faults only arise from
/// control flow leaving the text segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program counter left the text segment without reaching `halt`.
    PcOutOfRange {
        /// The faulting program counter.
        pc: InstrAddr,
        /// Length of the text segment.
        text_len: usize,
    },
    /// A branch or jump computed a target outside the 32-bit address space.
    TargetOverflow {
        /// Address of the branch instruction.
        at: InstrAddr,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfRange { pc, text_len } => {
                write!(
                    f,
                    "program counter {pc} outside text segment of {text_len} instructions"
                )
            }
            SimError::TargetOverflow { at } => {
                write!(f, "branch target overflow at {at}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_pc() {
        let e = SimError::PcOutOfRange {
            pc: InstrAddr::new(9),
            text_len: 4,
        };
        assert!(e.to_string().contains("@9"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<SimError>();
    }
}
