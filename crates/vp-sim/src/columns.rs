//! Columnar (struct-of-arrays) retirement traces.
//!
//! The AoS `Vec<TraceEvent>` layout spends 56 bytes per retired
//! instruction and drags every optional field through the cache even for
//! consumers that only want one column. [`TraceColumns`] stores the same
//! information as parallel arrays — a one-byte flag word and two
//! program-counter columns per event, plus *sparse* side arrays that hold
//! destination / memory / store payloads only for the events that have
//! them — cutting resident size roughly in half for typical traces and
//! making the predictor-replay hot path a linear scan over dense memory.
//!
//! Two access paths matter:
//!
//! - [`TraceColumns::replay`] reconstructs full [`Retirement`] records for
//!   generic tracers (profilers, the ILP machine, instruction mixes);
//! - [`TraceColumns::value_events`] yields only `(addr, value)` pairs of
//!   value-producing instructions — the only thing a value predictor
//!   consumes — without touching the memory or branch columns at all.
//!
//! [`TraceColumns::shard_by_pc`] partitions the value events by a
//! caller-supplied static-address key so per-PC (or per-table-set)
//! predictor state can be replayed shard-parallel; see
//! `provp_core::replay` for the invariant that makes this exact.

use std::io;
use std::mem;

use vp_isa::{InstrAddr, Program, Reg, RegClass};

use crate::exec::{MemAccess, Retirement};
use crate::record::TraceEvent;
use crate::Tracer;

// Flag bits of the per-event flag byte (shared with the spill format,
// which stores this column verbatim).
pub(crate) const F_DEST: u8 = 1 << 0;
pub(crate) const F_DEST_FP: u8 = 1 << 1;
pub(crate) const F_MEM: u8 = 1 << 2;
pub(crate) const F_MEM_STORE: u8 = 1 << 3;
pub(crate) const F_BRANCH: u8 = 1 << 4;
pub(crate) const F_TAKEN: u8 = 1 << 5;
pub(crate) const F_ALL: u8 = F_DEST | F_DEST_FP | F_MEM | F_MEM_STORE | F_BRANCH | F_TAKEN;

/// A retirement trace in struct-of-arrays form.
///
/// Dense columns (`flags`, `addr`, `next_pc`) have one element per event;
/// sparse columns hold payloads only for events whose flag bit is set, in
/// event order. Iteration reconstitutes events with running cursors into
/// the sparse columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceColumns {
    flags: Vec<u8>,
    addr: Vec<u32>,
    next_pc: Vec<u32>,
    /// Destination register index, one per `F_DEST` event.
    dest_reg: Vec<u8>,
    /// Destination value, one per `F_DEST` event.
    dest_val: Vec<u64>,
    /// Effective address, one per `F_MEM` event.
    mem_addr: Vec<u64>,
    /// Stored value, one per `F_MEM_STORE` event.
    stored: Vec<u64>,
}

impl TraceColumns {
    /// An empty column set.
    #[must_use]
    pub fn new() -> Self {
        TraceColumns::default()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Number of value-producing (destination-writing) events.
    #[must_use]
    pub fn dest_count(&self) -> usize {
        self.dest_val.len()
    }

    /// Number of memory-accessing events.
    #[must_use]
    pub fn mem_count(&self) -> usize {
        self.mem_addr.len()
    }

    /// Number of store events.
    #[must_use]
    pub fn store_count(&self) -> usize {
        self.stored.len()
    }

    /// Approximate resident size in bytes (for cache accounting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        mem::size_of::<TraceColumns>()
            + self.flags.capacity()
            + self.addr.capacity() * 4
            + self.next_pc.capacity() * 4
            + self.dest_reg.capacity()
            + self.dest_val.capacity() * 8
            + self.mem_addr.capacity() * 8
            + self.stored.capacity() * 8
    }

    /// Releases over-allocated capacity in every column.
    pub fn shrink_to_fit(&mut self) {
        self.flags.shrink_to_fit();
        self.addr.shrink_to_fit();
        self.next_pc.shrink_to_fit();
        self.dest_reg.shrink_to_fit();
        self.dest_val.shrink_to_fit();
        self.mem_addr.shrink_to_fit();
        self.stored.shrink_to_fit();
    }

    /// Appends one retirement.
    pub fn push_retirement(&mut self, ev: &Retirement<'_>) {
        self.push_parts(ev.addr, ev.dest, ev.mem, ev.stored, ev.taken, ev.next_pc);
    }

    /// Appends one owned event.
    ///
    /// `stored` is kept only for store events (`mem.store == true`), the
    /// same canonicalisation the spill format applies.
    pub fn push_event(&mut self, ev: &TraceEvent) {
        self.push_parts(ev.addr, ev.dest, ev.mem, ev.stored, ev.taken, ev.next_pc);
    }

    fn push_parts(
        &mut self,
        addr: InstrAddr,
        dest: Option<(RegClass, Reg, u64)>,
        mem: Option<MemAccess>,
        stored: Option<u64>,
        taken: Option<bool>,
        next_pc: InstrAddr,
    ) {
        let mut flags = 0u8;
        if let Some((class, reg, value)) = dest {
            flags |= F_DEST;
            if class == RegClass::Fp {
                flags |= F_DEST_FP;
            }
            self.dest_reg.push(reg.index());
            self.dest_val.push(value);
        }
        if let Some(mem) = mem {
            flags |= F_MEM;
            self.mem_addr.push(mem.addr);
            if mem.store {
                flags |= F_MEM_STORE;
                self.stored.push(stored.unwrap_or(0));
            }
        }
        if let Some(taken) = taken {
            flags |= F_BRANCH;
            if taken {
                flags |= F_TAKEN;
            }
        }
        self.flags.push(flags);
        self.addr.push(addr.index());
        self.next_pc.push(next_pc.index());
    }

    /// Builds columns from an owned event slice.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut cols = TraceColumns {
            flags: Vec::with_capacity(events.len()),
            addr: Vec::with_capacity(events.len()),
            next_pc: Vec::with_capacity(events.len()),
            ..TraceColumns::default()
        };
        for ev in events {
            cols.push_event(ev);
        }
        cols.shrink_to_fit();
        cols
    }

    /// Iterates the trace as owned [`TraceEvent`]s (cursor-based; for
    /// conversions and tests, not for the replay hot path).
    #[must_use]
    pub fn iter(&self) -> Events<'_> {
        Events {
            cols: self,
            i: 0,
            d: 0,
            m: 0,
            s: 0,
        }
    }

    /// Iterates `(addr, value)` pairs of the value-producing events —
    /// everything a value predictor consumes — touching only the dense
    /// flag/address columns and the sparse destination column.
    #[must_use]
    pub fn value_events(&self) -> ValueEvents<'_> {
        ValueEvents {
            cols: self,
            i: 0,
            d: 0,
        }
    }

    /// Partitions the value events into `n` shard views by a static-address
    /// key: shard `k` yields exactly the value events whose
    /// `key_of(addr) % n == k`, in trace order.
    ///
    /// Because the key function is applied to the *static* address, all
    /// dynamic instances of one instruction land in one shard; choosing
    /// `key_of` to match the predictor's state-partitioning function (the
    /// identity for per-PC state, the table's set index for set-associative
    /// state) makes shard-parallel replay exact.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn shard_by_pc<F>(&self, n: usize, key_of: F) -> Vec<PcShard<'_, F>>
    where
        F: Fn(InstrAddr) -> u64 + Clone,
    {
        assert!(n > 0, "shard count must be positive");
        (0..n)
            .map(|index| PcShard {
                cols: self,
                index: index as u64,
                of: n as u64,
                key_of: key_of.clone(),
            })
            .collect()
    }

    /// Replays the trace into `tracer`, reconstructing full
    /// [`Retirement`] records against `program` (which must be the program
    /// the trace was recorded from, or at least one with the same text
    /// length — directives never change architectural semantics).
    ///
    /// # Errors
    ///
    /// [`io::Error`] of kind `InvalidData` when an event's address does
    /// not name an instruction of `program`.
    pub fn replay(&self, program: &Program, tracer: &mut impl Tracer) -> io::Result<()> {
        // Dense columns stream through zipped slice iterators (no per-event
        // bounds checks); sparse side columns advance by slice splitting,
        // so a malformed column length surfaces as a clean error instead of
        // a panic.
        let text = program.text();
        let (mut dr, mut dv) = (&self.dest_reg[..], &self.dest_val[..]);
        let mut ma = &self.mem_addr[..];
        let mut st = &self.stored[..];
        let short = || io::Error::new(io::ErrorKind::InvalidData, "sparse trace column too short");
        for ((&flags, &raw_addr), &raw_next) in self.flags.iter().zip(&self.addr).zip(&self.next_pc)
        {
            let addr = InstrAddr::new(raw_addr);
            let instr = text.get(raw_addr as usize).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace event at {addr} outside program text"),
                )
            })?;
            let dest = if flags & F_DEST != 0 {
                let class = if flags & F_DEST_FP != 0 {
                    RegClass::Fp
                } else {
                    RegClass::Int
                };
                let (&reg, rest_r) = dr.split_first().ok_or_else(short)?;
                let (&value, rest_v) = dv.split_first().ok_or_else(short)?;
                (dr, dv) = (rest_r, rest_v);
                Some((class, Reg::new(reg), value))
            } else {
                None
            };
            let (mem, stored) = if flags & F_MEM != 0 {
                let store = flags & F_MEM_STORE != 0;
                let (&mem_addr, rest_m) = ma.split_first().ok_or_else(short)?;
                ma = rest_m;
                let stored = if store {
                    let (&v, rest_s) = st.split_first().ok_or_else(short)?;
                    st = rest_s;
                    Some(v)
                } else {
                    None
                };
                (
                    Some(MemAccess {
                        addr: mem_addr,
                        store,
                    }),
                    stored,
                )
            } else {
                (None, None)
            };
            let taken = (flags & F_BRANCH != 0).then_some(flags & F_TAKEN != 0);
            tracer.retire(&Retirement {
                addr,
                instr,
                dest,
                mem,
                stored,
                taken,
                next_pc: InstrAddr::new(raw_next),
            });
        }
        Ok(())
    }

    // Column accessors for the spill codec (kept crate-private so the
    // invariants — equal dense lengths, sparse lengths matching flag
    // population counts, register indices in range — stay local).
    pub(crate) fn raw_parts(&self) -> RawColumns<'_> {
        RawColumns {
            flags: &self.flags,
            addr: &self.addr,
            next_pc: &self.next_pc,
            dest_reg: &self.dest_reg,
            dest_val: &self.dest_val,
            mem_addr: &self.mem_addr,
            stored: &self.stored,
        }
    }

    pub(crate) fn from_raw_parts(
        flags: Vec<u8>,
        addr: Vec<u32>,
        next_pc: Vec<u32>,
        dest_reg: Vec<u8>,
        dest_val: Vec<u64>,
        mem_addr: Vec<u64>,
        stored: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(flags.len(), addr.len());
        debug_assert_eq!(flags.len(), next_pc.len());
        debug_assert_eq!(dest_reg.len(), dest_val.len());
        TraceColumns {
            flags,
            addr,
            next_pc,
            dest_reg,
            dest_val,
            mem_addr,
            stored,
        }
    }
}

/// Borrowed view of every column, for the spill codec.
pub(crate) struct RawColumns<'a> {
    pub flags: &'a [u8],
    pub addr: &'a [u32],
    pub next_pc: &'a [u32],
    pub dest_reg: &'a [u8],
    pub dest_val: &'a [u64],
    pub mem_addr: &'a [u64],
    pub stored: &'a [u64],
}

/// Iterator over a [`TraceColumns`] as owned [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct Events<'a> {
    cols: &'a TraceColumns,
    i: usize,
    d: usize,
    m: usize,
    s: usize,
}

impl Iterator for Events<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let c = self.cols;
        let flags = *c.flags.get(self.i)?;
        let addr = InstrAddr::new(c.addr[self.i]);
        let next_pc = InstrAddr::new(c.next_pc[self.i]);
        self.i += 1;
        let dest = if flags & F_DEST != 0 {
            let class = if flags & F_DEST_FP != 0 {
                RegClass::Fp
            } else {
                RegClass::Int
            };
            let entry = (class, Reg::new(c.dest_reg[self.d]), c.dest_val[self.d]);
            self.d += 1;
            Some(entry)
        } else {
            None
        };
        let (mem, stored) = if flags & F_MEM != 0 {
            let store = flags & F_MEM_STORE != 0;
            let access = MemAccess {
                addr: c.mem_addr[self.m],
                store,
            };
            self.m += 1;
            let stored = if store {
                let v = c.stored[self.s];
                self.s += 1;
                Some(v)
            } else {
                None
            };
            (Some(access), stored)
        } else {
            (None, None)
        };
        let taken = (flags & F_BRANCH != 0).then_some(flags & F_TAKEN != 0);
        Some(TraceEvent {
            addr,
            dest,
            mem,
            stored,
            taken,
            next_pc,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.cols.len() - self.i;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Events<'_> {}

/// Iterator over the `(addr, value)` pairs of value-producing events.
#[derive(Debug, Clone)]
pub struct ValueEvents<'a> {
    cols: &'a TraceColumns,
    i: usize,
    d: usize,
}

impl Iterator for ValueEvents<'_> {
    type Item = (InstrAddr, u64);

    fn next(&mut self) -> Option<(InstrAddr, u64)> {
        let c = self.cols;
        while self.i < c.flags.len() {
            let i = self.i;
            self.i += 1;
            if c.flags[i] & F_DEST != 0 {
                let value = c.dest_val[self.d];
                self.d += 1;
                return Some((InstrAddr::new(c.addr[i]), value));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.cols.len() - self.i))
    }
}

/// One shard of a PC-partitioned trace: the value events whose
/// static-address key maps to this shard, in trace order.
#[derive(Debug, Clone)]
pub struct PcShard<'a, F> {
    cols: &'a TraceColumns,
    index: u64,
    of: u64,
    key_of: F,
}

impl<'a, F: Fn(InstrAddr) -> u64> PcShard<'a, F> {
    /// This shard's index in `0..shard_count`.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// Total shard count of the partition this shard belongs to.
    #[must_use]
    pub fn of(&self) -> usize {
        self.of as usize
    }

    /// Iterates this shard's `(addr, value)` pairs.
    #[must_use]
    pub fn values(&self) -> ShardValues<'a, &F> {
        ShardValues {
            inner: self.cols.value_events(),
            index: self.index,
            of: self.of,
            key_of: &self.key_of,
        }
    }
}

/// Iterator over one shard's `(addr, value)` pairs.
#[derive(Debug, Clone)]
pub struct ShardValues<'a, F> {
    inner: ValueEvents<'a>,
    index: u64,
    of: u64,
    key_of: F,
}

impl<F: Fn(InstrAddr) -> u64> Iterator for ShardValues<'_, F> {
    type Item = (InstrAddr, u64);

    fn next(&mut self) -> Option<(InstrAddr, u64)> {
        for (addr, value) in self.inner.by_ref() {
            if (self.key_of)(addr) % self.of == self.index {
                return Some((addr, value));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecorder;
    use crate::{run, InstrMix, RunLimits};
    use vp_isa::asm::assemble;

    const SAMPLE: &str = ".f64 1.5\nli r1, 0\nli r2, 20\n\
top: fld f1, (r0)\nfadd f2, f2, f1\nsd r1, 5(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";

    fn sample_columns() -> (vp_isa::Program, TraceColumns) {
        let p = assemble(SAMPLE).unwrap();
        let mut rec = TraceRecorder::new();
        run(&p, &mut rec, RunLimits::default()).unwrap();
        (p, rec.into_columns())
    }

    #[test]
    fn iter_round_trips_through_events() {
        let (_, cols) = sample_columns();
        let events: Vec<TraceEvent> = cols.iter().collect();
        assert_eq!(events.len(), cols.len());
        let back = TraceColumns::from_events(&events);
        assert_eq!(back, cols);
    }

    #[test]
    fn replay_matches_aos_replay() {
        let (p, cols) = sample_columns();
        let mut live = InstrMix::new();
        run(&p, &mut live, RunLimits::default()).unwrap();
        let mut replayed = InstrMix::new();
        cols.replay(&p, &mut replayed).unwrap();
        assert_eq!(live, replayed);
    }

    #[test]
    fn replay_rejects_foreign_programs() {
        let (_, cols) = sample_columns();
        let other = assemble("halt\n").unwrap();
        let e = cols.replay(&other, &mut crate::NullTracer).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn value_events_are_exactly_the_dest_writes() {
        let (_, cols) = sample_columns();
        let via_iter: Vec<(InstrAddr, u64)> = cols
            .iter()
            .filter_map(|ev| ev.dest.map(|(_, _, v)| (ev.addr, v)))
            .collect();
        let via_values: Vec<(InstrAddr, u64)> = cols.value_events().collect();
        assert_eq!(via_values, via_iter);
        assert_eq!(via_values.len(), cols.dest_count());
        assert!(!via_values.is_empty());
    }

    #[test]
    fn shards_partition_the_value_events() {
        let (_, cols) = sample_columns();
        let all: Vec<(InstrAddr, u64)> = cols.value_events().collect();
        for n in [1usize, 2, 3, 8] {
            let shards = cols.shard_by_pc(n, |a| u64::from(a.index()));
            assert_eq!(shards.len(), n);
            let mut merged: Vec<(InstrAddr, u64)> = Vec::new();
            let mut total = 0;
            for shard in &shards {
                let part: Vec<(InstrAddr, u64)> = shard.values().collect();
                // Every element belongs to this shard.
                for &(addr, _) in &part {
                    assert_eq!(u64::from(addr.index()) % n as u64, shard.index() as u64);
                }
                total += part.len();
                merged.extend(part);
            }
            assert_eq!(total, all.len(), "{n} shards lost/duplicated events");
            merged.sort_by_key(|&(a, _)| u64::from(a.index()));
            let mut sorted = all.clone();
            sorted.sort_by_key(|&(a, _)| u64::from(a.index()));
            // Multisets must agree (order within a shard is trace order,
            // which the sort normalises for comparison).
            assert_eq!(merged.len(), sorted.len());
        }
    }

    #[test]
    fn sparse_columns_are_actually_sparse() {
        let (_, cols) = sample_columns();
        assert!(cols.dest_count() < cols.len());
        assert!(cols.mem_count() < cols.len());
        assert!(cols.store_count() <= cols.mem_count());
        // SoA resident size is far below the 56-byte AoS event.
        assert!(cols.approx_bytes() < cols.len() * mem::size_of::<TraceEvent>());
    }
}
