//! Trace recording and replay.
//!
//! SHADE could emit trace files that analyzers consumed offline; this
//! module is that capability for `vp-sim`: capture a retirement trace once
//! ([`TraceRecorder`]), then [`replay`] it into any number of tracers
//! (profilers, predictors, the ILP machine) without re-simulating, or ship
//! it through any `std::io` stream with [`write_trace`] / [`read_trace`].

use std::io::{self, Read, Write};
use std::mem;

use vp_isa::{InstrAddr, Program, Reg, RegClass};

use crate::exec::{MemAccess, Retirement};
use crate::runner::{run, RunLimits};
use crate::{SimError, Tracer};

/// One retired instruction, in owned form (no borrow of the program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static address of the retired instruction.
    pub addr: InstrAddr,
    /// Destination write `(class, register, value)`, if any.
    pub dest: Option<(RegClass, Reg, u64)>,
    /// Memory effect, if any.
    pub mem: Option<MemAccess>,
    /// For stores: the value written.
    pub stored: Option<u64>,
    /// Branch outcome, if the instruction was a conditional branch.
    pub taken: Option<bool>,
    /// Program counter after the instruction.
    pub next_pc: InstrAddr,
}

impl TraceEvent {
    /// Captures a retirement into owned form.
    #[must_use]
    pub fn from_retirement(ev: &Retirement<'_>) -> Self {
        TraceEvent {
            addr: ev.addr,
            dest: ev.dest,
            mem: ev.mem,
            stored: ev.stored,
            taken: ev.taken,
            next_pc: ev.next_pc,
        }
    }
}

/// A tracer that stores the whole trace in memory.
///
/// # Examples
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::record::{replay, TraceRecorder};
/// use vp_sim::{run, InstrMix, RunLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 3\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n")?;
/// let mut rec = TraceRecorder::new();
/// run(&p, &mut rec, RunLimits::default())?;
/// // Replay into a different consumer without re-simulating.
/// let mut mix = InstrMix::new();
/// replay(&p, rec.events(), &mut mix)?;
/// assert_eq!(mix.total() as usize, rec.events().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the trace.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Tracer for TraceRecorder {
    fn retire(&mut self, ev: &Retirement<'_>) {
        self.events.push(TraceEvent::from_retirement(ev));
    }
}

/// Replays a recorded trace into `tracer`, reconstructing full
/// [`Retirement`] records against `program` (which must be the program the
/// trace was recorded from, or at least one with the same text length).
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when an event's address does not
/// name an instruction of `program`.
pub fn replay(
    program: &Program,
    events: &[TraceEvent],
    tracer: &mut impl Tracer,
) -> io::Result<()> {
    for ev in events {
        let instr = program.fetch(ev.addr).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace event at {} outside program text", ev.addr),
            )
        })?;
        tracer.retire(&Retirement {
            addr: ev.addr,
            instr,
            dest: ev.dest,
            mem: ev.mem,
            stored: ev.stored,
            taken: ev.taken,
            next_pc: ev.next_pc,
        });
    }
    Ok(())
}

/// An owned retirement trace: simulate once, replay into any number of
/// consumers.
///
/// This is the unit the experiment harness memoizes — capturing a trace
/// costs one functional simulation, after which every analysis pass
/// (profiling, prediction, ILP) is a cheap [`Trace::replay`]. Because
/// prediction directives never change architectural semantics, a trace
/// captured from a bare program replays bit-identically against any
/// directive-annotated variant of the same program.
///
/// # Examples
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::record::Trace;
/// use vp_sim::{InstrMix, RunLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 3\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n")?;
/// let trace = Trace::capture(&p, RunLimits::default())?;
/// let mut mix = InstrMix::new();
/// trace.replay(&p, &mut mix)?;
/// assert_eq!(mix.total() as usize, trace.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Simulates `program` under `limits` and captures its full
    /// retirement trace.
    ///
    /// # Errors
    ///
    /// Propagates the simulator's [`SimError`] (fault, limit overrun, …).
    pub fn capture(program: &Program, limits: RunLimits) -> Result<Trace, SimError> {
        let mut rec = TraceRecorder::new();
        run(program, &mut rec, limits)?;
        let mut events = rec.into_events();
        events.shrink_to_fit();
        Ok(Trace { events })
    }

    /// Captures a trace while simultaneously feeding every retirement to
    /// `tracer` — one simulation pass serves both the recording and the
    /// first analysis, so a cache miss costs no more than the analysis
    /// alone did without the cache.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults, like [`vp_sim::run`](crate::run).
    pub fn capture_with(
        program: &Program,
        limits: RunLimits,
        tracer: &mut impl Tracer,
    ) -> Result<Trace, SimError> {
        let mut rec = TraceRecorder::new();
        run(
            program,
            &mut crate::ChainTracer::new(&mut rec, tracer),
            limits,
        )?;
        let mut events = rec.into_events();
        events.shrink_to_fit();
        Ok(Trace { events })
    }

    /// Wraps an already-recorded event list.
    #[must_use]
    pub fn from_events(mut events: Vec<TraceEvent>) -> Trace {
        events.shrink_to_fit();
        Trace { events }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retired instructions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Approximate resident size in bytes (for cache accounting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        mem::size_of::<Trace>() + self.events.capacity() * mem::size_of::<TraceEvent>()
    }

    /// Replays the trace into `tracer` against `program`.
    ///
    /// # Errors
    ///
    /// See [`replay`].
    pub fn replay(&self, program: &Program, tracer: &mut impl Tracer) -> io::Result<()> {
        replay(program, &self.events, tracer)
    }

    /// Serialises the trace in the compact binary format.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        write_trace(w, &self.events)
    }

    /// Deserialises a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// See [`read_trace`].
    pub fn read_from<R: Read>(r: R) -> io::Result<Trace> {
        Ok(Trace {
            events: read_trace(r)?,
        })
    }
}

const MAGIC: &[u8; 8] = b"provptr1";

// Flag bits of the per-event header byte.
const F_DEST: u8 = 1 << 0;
const F_DEST_FP: u8 = 1 << 1;
const F_MEM: u8 = 1 << 2;
const F_MEM_STORE: u8 = 1 << 3;
const F_BRANCH: u8 = 1 << 4;
const F_TAKEN: u8 = 1 << 5;

/// Serialises a trace to a writer (pass `&mut writer` to keep it).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_trace<W: Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(events.len() as u64).to_le_bytes())?;
    for ev in events {
        let mut flags = 0u8;
        if let Some((class, _, _)) = ev.dest {
            flags |= F_DEST;
            if class == RegClass::Fp {
                flags |= F_DEST_FP;
            }
        }
        if let Some(mem) = ev.mem {
            flags |= F_MEM;
            if mem.store {
                flags |= F_MEM_STORE;
            }
        }
        if let Some(taken) = ev.taken {
            flags |= F_BRANCH;
            if taken {
                flags |= F_TAKEN;
            }
        }
        w.write_all(&[flags])?;
        w.write_all(&ev.addr.index().to_le_bytes())?;
        w.write_all(&ev.next_pc.index().to_le_bytes())?;
        if let Some((_, reg, value)) = ev.dest {
            w.write_all(&[reg.index()])?;
            w.write_all(&value.to_le_bytes())?;
        }
        if let Some(mem) = ev.mem {
            w.write_all(&mem.addr.to_le_bytes())?;
            if mem.store {
                w.write_all(&ev.stored.unwrap_or(0).to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserialises a trace from a reader (pass `&mut reader` to keep it).
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` for a bad magic or malformed event;
/// reader errors are propagated.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<TraceEvent>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    let count = u64::from_le_bytes(count);
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let mut header = [0u8; 9];
        r.read_exact(&mut header)?;
        let flags = header[0];
        let addr = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
        let next_pc = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
        let dest = if flags & F_DEST != 0 {
            let mut buf = [0u8; 9];
            r.read_exact(&mut buf)?;
            let reg = Reg::try_new(buf[0]).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "register out of range in trace")
            })?;
            let value = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
            let class = if flags & F_DEST_FP != 0 {
                RegClass::Fp
            } else {
                RegClass::Int
            };
            Some((class, reg, value))
        } else {
            None
        };
        let (mem, stored) = if flags & F_MEM != 0 {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            let store = flags & F_MEM_STORE != 0;
            let stored = if store {
                let mut v = [0u8; 8];
                r.read_exact(&mut v)?;
                Some(u64::from_le_bytes(v))
            } else {
                None
            };
            (
                Some(MemAccess {
                    addr: u64::from_le_bytes(buf),
                    store,
                }),
                stored,
            )
        } else {
            (None, None)
        };
        let taken = (flags & F_BRANCH != 0).then_some(flags & F_TAKEN != 0);
        events.push(TraceEvent {
            addr: InstrAddr::new(addr),
            dest,
            mem,
            stored,
            taken,
            next_pc: InstrAddr::new(next_pc),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, InstrMix, RunLimits};
    use vp_isa::asm::assemble;

    fn record(src: &str) -> (Program, Vec<TraceEvent>) {
        let p = assemble(src).unwrap();
        let mut rec = TraceRecorder::new();
        run(&p, &mut rec, RunLimits::default()).unwrap();
        (p, rec.into_events())
    }

    const SAMPLE: &str = ".f64 1.5\nli r1, 0\nli r2, 20\n\
top: fld f1, (r0)\nfadd f2, f2, f1\nsd r1, 5(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";

    #[test]
    fn serialisation_round_trips() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn replay_matches_live_tracing() {
        let (p, events) = record(SAMPLE);
        let mut live = InstrMix::new();
        run(&p, &mut live, RunLimits::default()).unwrap();
        let mut replayed = InstrMix::new();
        replay(&p, &events, &mut replayed).unwrap();
        assert_eq!(live, replayed);
    }

    #[test]
    fn replay_rejects_foreign_traces() {
        let (_, events) = record(SAMPLE);
        let other = assemble("halt\n").unwrap();
        let e = replay(&other, &events, &mut crate::NullTracer).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let e = read_trace(&b"notatrace........"[..]).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(read_trace(bytes.as_slice()).is_err());
    }

    #[test]
    fn trace_capture_matches_recorder_and_round_trips() {
        let (p, events) = record(SAMPLE);
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        assert_eq!(trace.events(), &events[..]);
        assert_eq!(trace.len(), events.len());
        assert!(!trace.is_empty());
        assert!(trace.approx_bytes() > events.len());

        let mut live = InstrMix::new();
        run(&p, &mut live, RunLimits::default()).unwrap();
        let mut replayed = InstrMix::new();
        trace.replay(&p, &mut replayed).unwrap();
        assert_eq!(live, replayed);

        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        assert_eq!(Trace::read_from(bytes.as_slice()).unwrap(), trace);
    }

    #[test]
    fn event_kinds_are_preserved() {
        let (_, events) = record(SAMPLE);
        assert!(events
            .iter()
            .any(|e| matches!(e.dest, Some((RegClass::Fp, _, _)))));
        assert!(events
            .iter()
            .any(|e| matches!(e.mem, Some(MemAccess { store: true, .. }))));
        assert!(events.iter().any(|e| e.taken == Some(true)));
        assert!(events.iter().any(|e| e.taken == Some(false)));
    }
}
