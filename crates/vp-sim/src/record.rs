//! Trace recording, replay and the versioned spill format.
//!
//! SHADE could emit trace files that analyzers consumed offline; this
//! module is that capability for `vp-sim`: capture a retirement trace once
//! ([`TraceRecorder`]), then replay it into any number of tracers
//! (profilers, predictors, the ILP machine) without re-simulating, or ship
//! it through any `std::io` stream with [`write_trace`] / [`read_trace`].
//!
//! Traces are held columnar ([`TraceColumns`]) and spilled in a compact
//! varint + delta encoded format protected by a trailing FNV-1a-64
//! checksum (`provptr3`); the reader also accepts the unchecksummed
//! columnar format (`provptr2`) and the original fixed-width AoS format
//! (`provptr1`), so spill directories written by earlier versions keep
//! working. Malformed inputs surface as a typed [`TraceError`] — in
//! particular, on-disk length prefixes are never trusted for allocation,
//! so a corrupt header cannot OOM the reader, and (for `provptr3`) a bit
//! flip anywhere in the body fails the checksum instead of silently
//! decoding to wrong values.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

use vp_isa::{InstrAddr, Program, Reg, RegClass};

use crate::columns::{F_ALL, F_BRANCH, F_DEST, F_DEST_FP, F_MEM, F_MEM_STORE, F_TAKEN};
use crate::exec::{MemAccess, Retirement};
use crate::runner::{run, RunLimits};
use crate::{SimError, TraceColumns, Tracer};

/// One retired instruction, in owned form (no borrow of the program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static address of the retired instruction.
    pub addr: InstrAddr,
    /// Destination write `(class, register, value)`, if any.
    pub dest: Option<(RegClass, Reg, u64)>,
    /// Memory effect, if any.
    pub mem: Option<MemAccess>,
    /// For stores: the value written.
    pub stored: Option<u64>,
    /// Branch outcome, if the instruction was a conditional branch.
    pub taken: Option<bool>,
    /// Program counter after the instruction.
    pub next_pc: InstrAddr,
}

impl TraceEvent {
    /// Captures a retirement into owned form.
    #[must_use]
    pub fn from_retirement(ev: &Retirement<'_>) -> Self {
        TraceEvent {
            addr: ev.addr,
            dest: ev.dest,
            mem: ev.mem,
            stored: ev.stored,
            taken: ev.taken,
            next_pc: ev.next_pc,
        }
    }
}

/// Why a serialised trace could not be read.
///
/// Distinguishes "the stream ended early" ([`TraceError::Truncated`])
/// from "the bytes are inconsistent" ([`TraceError::Corrupt`]) and, most
/// importantly, rejects absurd length prefixes
/// ([`TraceError::AbsurdLength`]) *before* any allocation is sized from
/// them.
#[derive(Debug)]
pub enum TraceError {
    /// The stream does not start with a known trace magic.
    BadMagic,
    /// A length prefix exceeds [`MAX_TRACE_EVENTS`]; the prefix is
    /// rejected outright instead of sizing an allocation from it.
    AbsurdLength {
        /// The length the header claimed.
        claimed: u64,
        /// The largest length the reader accepts.
        limit: u64,
    },
    /// The stream ended before the data its header promised.
    Truncated {
        /// Which section of the trace was being read.
        context: &'static str,
    },
    /// The bytes were read but are internally inconsistent.
    Corrupt {
        /// What was inconsistent.
        context: String,
    },
    /// An underlying I/O failure other than a clean end-of-stream.
    Io(io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "bad trace magic"),
            TraceError::AbsurdLength { claimed, limit } => {
                write!(f, "absurd trace length {claimed} (limit {limit})")
            }
            TraceError::Truncated { context } => write!(f, "truncated trace: {context}"),
            TraceError::Corrupt { context } => write!(f, "corrupt trace: {context}"),
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> io::Error {
        match e {
            TraceError::Io(io) => io,
            TraceError::Truncated { .. } => {
                io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string())
            }
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Largest event count any length prefix may claim (2³³ events ≈ 170× the
/// simulator's default run budget); larger prefixes are garbage headers,
/// rejected as [`TraceError::AbsurdLength`].
pub const MAX_TRACE_EVENTS: u64 = 1 << 33;

/// Largest element count pre-allocated from an (already bounded) length
/// prefix before the data proves itself by actually parsing.
const PREALLOC_CAP: usize = 1 << 20;

/// A tracer that stores the whole trace in memory (columnar).
///
/// # Examples
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::record::TraceRecorder;
/// use vp_sim::{run, InstrMix, RunLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 3\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n")?;
/// let mut rec = TraceRecorder::new();
/// run(&p, &mut rec, RunLimits::default())?;
/// // Replay into a different consumer without re-simulating.
/// let total = rec.len();
/// let cols = rec.into_columns();
/// let mut mix = InstrMix::new();
/// cols.replay(&p, &mut mix)?;
/// assert_eq!(mix.total() as usize, total);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    columns: TraceColumns,
}

impl TraceRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The recorded trace, columnar.
    #[must_use]
    pub fn columns(&self) -> &TraceColumns {
        &self.columns
    }

    /// Consumes the recorder, returning the columnar trace.
    #[must_use]
    pub fn into_columns(self) -> TraceColumns {
        self.columns
    }

    /// Consumes the recorder, returning the trace as owned events
    /// (materialises the AoS form; prefer [`TraceRecorder::into_columns`]
    /// on hot paths).
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.columns.iter().collect()
    }
}

impl Tracer for TraceRecorder {
    fn retire(&mut self, ev: &Retirement<'_>) {
        self.columns.push_retirement(ev);
    }
}

/// Replays a recorded AoS event slice into `tracer`, reconstructing full
/// [`Retirement`] records against `program` (which must be the program the
/// trace was recorded from, or at least one with the same text length).
///
/// Columnar traces replay via [`TraceColumns::replay`] without
/// materialising events; this slice form remains for callers that already
/// hold `Vec<TraceEvent>`.
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when an event's address does not
/// name an instruction of `program`.
pub fn replay(
    program: &Program,
    events: &[TraceEvent],
    tracer: &mut impl Tracer,
) -> io::Result<()> {
    for ev in events {
        let instr = program.fetch(ev.addr).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace event at {} outside program text", ev.addr),
            )
        })?;
        tracer.retire(&Retirement {
            addr: ev.addr,
            instr,
            dest: ev.dest,
            mem: ev.mem,
            stored: ev.stored,
            taken: ev.taken,
            next_pc: ev.next_pc,
        });
    }
    Ok(())
}

/// An owned retirement trace: simulate once, replay into any number of
/// consumers.
///
/// This is the unit the experiment harness memoizes — capturing a trace
/// costs one functional simulation, after which every analysis pass
/// (profiling, prediction, ILP) is a cheap [`Trace::replay`]. Because
/// prediction directives never change architectural semantics, a trace
/// captured from a bare program replays bit-identically against any
/// directive-annotated variant of the same program.
///
/// Internally the trace is columnar ([`TraceColumns`]); value-prediction
/// replay walks [`TraceColumns::value_events`] directly instead of
/// reconstructing retirements.
///
/// # Examples
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::record::Trace;
/// use vp_sim::{InstrMix, RunLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 3\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n")?;
/// let trace = Trace::capture(&p, RunLimits::default())?;
/// let mut mix = InstrMix::new();
/// trace.replay(&p, &mut mix)?;
/// assert_eq!(mix.total() as usize, trace.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    columns: TraceColumns,
}

impl Trace {
    /// Simulates `program` under `limits` and captures its full
    /// retirement trace.
    ///
    /// # Errors
    ///
    /// Propagates the simulator's [`SimError`] (fault, limit overrun, …).
    pub fn capture(program: &Program, limits: RunLimits) -> Result<Trace, SimError> {
        let mut rec = TraceRecorder::new();
        run(program, &mut rec, limits)?;
        let mut columns = rec.into_columns();
        columns.shrink_to_fit();
        Ok(Trace { columns })
    }

    /// Captures a trace while simultaneously feeding every retirement to
    /// `tracer` — one simulation pass serves both the recording and the
    /// first analysis, so a cache miss costs no more than the analysis
    /// alone did without the cache.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults, like [`vp_sim::run`](crate::run).
    pub fn capture_with(
        program: &Program,
        limits: RunLimits,
        tracer: &mut impl Tracer,
    ) -> Result<Trace, SimError> {
        let mut rec = TraceRecorder::new();
        run(
            program,
            &mut crate::ChainTracer::new(&mut rec, tracer),
            limits,
        )?;
        let mut columns = rec.into_columns();
        columns.shrink_to_fit();
        Ok(Trace { columns })
    }

    /// Wraps an already-recorded event list (converted to columnar form).
    #[must_use]
    pub fn from_events(events: Vec<TraceEvent>) -> Trace {
        Trace {
            columns: TraceColumns::from_events(&events),
        }
    }

    /// Wraps an already-built column set.
    #[must_use]
    pub fn from_columns(columns: TraceColumns) -> Trace {
        Trace { columns }
    }

    /// The columnar representation.
    #[must_use]
    pub fn columns(&self) -> &TraceColumns {
        &self.columns
    }

    /// Iterates the trace as owned [`TraceEvent`]s.
    #[must_use]
    pub fn iter(&self) -> crate::columns::Events<'_> {
        self.columns.iter()
    }

    /// Number of retired instructions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Approximate resident size in bytes (for cache accounting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.columns.approx_bytes()
    }

    /// Replays the trace into `tracer` against `program`.
    ///
    /// # Errors
    ///
    /// See [`TraceColumns::replay`].
    pub fn replay(&self, program: &Program, tracer: &mut impl Tracer) -> io::Result<()> {
        self.columns.replay(program, tracer)
    }

    /// Serialises the trace in the compact checksummed columnar binary
    /// format (`provptr3`).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        write_columns(w, &self.columns)
    }

    /// Deserialises a trace written by [`Trace::write_to`] — any format
    /// version.
    ///
    /// # Errors
    ///
    /// See [`read_columns`].
    pub fn read_from<R: Read>(r: R) -> Result<Trace, TraceError> {
        Ok(Trace {
            columns: read_columns(r)?,
        })
    }
}

/// The first point at which two retirement streams disagree.
///
/// `None` on one side means that stream ended while the other still had
/// events (a length mismatch is itself a divergence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Index of the first differing event.
    pub index: usize,
    /// The left stream's event at `index`, if it had one.
    pub left: Option<TraceEvent>,
    /// The right stream's event at `index`, if it had one.
    pub right: Option<TraceEvent>,
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "traces diverge at event {}: left = {:?}, right = {:?}",
            self.index, self.left, self.right
        )
    }
}

impl std::error::Error for TraceDivergence {}

/// Finds the first event where two retirement streams differ, or `None`
/// when they are identical (including length).
///
/// This is the differential-testing primitive: run the optimized simulator
/// and an independent reference over the same program and compare their
/// streams field-for-field. Accepts anything yielding [`TraceEvent`]s, so
/// a columnar [`Trace`] compares directly against a row-oriented
/// `Vec<TraceEvent>` without converting either side:
///
/// ```
/// use vp_sim::record::{first_divergence, Trace};
/// use vp_sim::RunLimits;
/// use vp_isa::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 2\nhalt\n")?;
/// let a = Trace::capture(&p, RunLimits::default())?;
/// let b = Trace::capture(&p, RunLimits::default())?;
/// assert!(first_divergence(a.iter(), b.iter()).is_none());
/// # Ok(())
/// # }
/// ```
pub fn first_divergence<A, B>(a: A, b: B) -> Option<TraceDivergence>
where
    A: IntoIterator<Item = TraceEvent>,
    B: IntoIterator<Item = TraceEvent>,
{
    let mut a = a.into_iter();
    let mut b = b.into_iter();
    let mut index = 0usize;
    loop {
        match (a.next(), b.next()) {
            (None, None) => return None,
            (left, right) if left == right => index += 1,
            (left, right) => return Some(TraceDivergence { index, left, right }),
        }
    }
}

/// Legacy fixed-width AoS format (one flag byte + fixed-width fields per
/// event). Still readable; never written except by the doc-hidden legacy
/// writer kept for fixture tests.
const MAGIC_V1: &[u8; 8] = b"provptr1";

/// Legacy columnar format: varint section lengths, raw flag column,
/// zigzag-varint delta-encoded address/value columns. Still readable;
/// never written except by the doc-hidden legacy writer.
const MAGIC_V2: &[u8; 8] = b"provptr2";

/// Current format: the `provptr2` columnar body followed by an FNV-1a-64
/// checksum over every body byte, so corruption that would decode as
/// plausible-but-wrong column data is caught instead of silently accepted.
const MAGIC_V3: &[u8; 8] = b"provptr3";

// --- FNV-1a-64 streaming checksum --------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_fold(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Forwards writes while folding every written byte into an FNV-1a-64
/// hash, so the trailing checksum costs no buffering.
struct HashingWriter<W> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.hash = fnv1a_fold(self.hash, &buf[..written]);
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Forwards reads while folding every consumed byte into an FNV-1a-64
/// hash; the v3 reader compares the body hash against the trailer.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let filled = self.inner.read(buf)?;
        self.hash = fnv1a_fold(self.hash, &buf[..filled]);
        Ok(filled)
    }
}

/// Serialises a trace (as events) to a writer in the current columnar
/// format (pass `&mut writer` to keep it).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_trace<W: Write>(w: W, events: &[TraceEvent]) -> io::Result<()> {
    write_columns(w, &TraceColumns::from_events(events))
}

/// Deserialises a trace from a reader (either format version; pass
/// `&mut reader` to keep it).
///
/// # Errors
///
/// A typed [`TraceError`]: bad magic, absurd length prefix, truncation,
/// corruption, or an underlying I/O failure.
pub fn read_trace<R: Read>(r: R) -> Result<Vec<TraceEvent>, TraceError> {
    Ok(read_columns(r)?.iter().collect())
}

/// Serialises a columnar trace in the current (`provptr3`) format: the
/// columnar body followed by an FNV-1a-64 checksum over the body bytes.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_columns<W: Write>(mut w: W, cols: &TraceColumns) -> io::Result<()> {
    w.write_all(MAGIC_V3)?;
    let mut hw = HashingWriter::new(&mut w);
    write_columns_body(&mut hw, cols)?;
    let checksum = hw.hash;
    w.write_all(&checksum.to_le_bytes())
}

/// Writes the legacy unchecksummed `provptr2` format. Kept (hidden) so
/// tests can prove the backward-compatible read path; production code
/// always writes `provptr3`.
///
/// # Errors
///
/// Propagates writer errors.
#[doc(hidden)]
pub fn write_columns_legacy_v2<W: Write>(mut w: W, cols: &TraceColumns) -> io::Result<()> {
    w.write_all(MAGIC_V2)?;
    write_columns_body(&mut w, cols)
}

/// The shared v2/v3 columnar body (everything after the magic).
fn write_columns_body<W: Write>(mut w: W, cols: &TraceColumns) -> io::Result<()> {
    let c = cols.raw_parts();
    write_varint(&mut w, c.flags.len() as u64)?;
    write_varint(&mut w, c.dest_val.len() as u64)?;
    write_varint(&mut w, c.mem_addr.len() as u64)?;
    write_varint(&mut w, c.stored.len() as u64)?;
    // Flag column, verbatim.
    w.write_all(c.flags)?;
    // Address column: delta vs the previous event's address (consecutive
    // instructions differ by ±small values almost always).
    let mut prev = 0i64;
    for &a in c.addr {
        let v = i64::from(a);
        write_varint(&mut w, zigzag(v - prev))?;
        prev = v;
    }
    // Next-PC column: delta vs the fallthrough (`addr + 1`), which is
    // zero for every non-taken-branch instruction.
    for (i, &np) in c.next_pc.iter().enumerate() {
        write_varint(&mut w, zigzag(i64::from(np) - (i64::from(c.addr[i]) + 1)))?;
    }
    // Destination register column, verbatim.
    w.write_all(c.dest_reg)?;
    // Destination values: delta vs the same static instruction's previous
    // value (strides and repeated last-values — the very predictability
    // the paper measures — make these deltas tiny).
    let mut last: HashMap<u32, u64> = HashMap::new();
    let mut d = 0usize;
    for (i, &flags) in c.flags.iter().enumerate() {
        if flags & F_DEST != 0 {
            let value = c.dest_val[d];
            d += 1;
            let prev = last.insert(c.addr[i], value).unwrap_or(0);
            write_varint(&mut w, zigzag(value.wrapping_sub(prev) as i64))?;
        }
    }
    // Memory addresses and stored values: delta vs the previous one.
    let mut prev = 0u64;
    for &a in c.mem_addr {
        write_varint(&mut w, zigzag(a.wrapping_sub(prev) as i64))?;
        prev = a;
    }
    let mut prev = 0u64;
    for &v in c.stored {
        write_varint(&mut w, zigzag(v.wrapping_sub(prev) as i64))?;
        prev = v;
    }
    Ok(())
}

/// Deserialises a columnar trace, accepting the current checksummed
/// `provptr3` format, the legacy `provptr2` columnar format and the legacy
/// `provptr1` AoS format.
///
/// # Errors
///
/// A typed [`TraceError`]. Length prefixes are bounded by
/// [`MAX_TRACE_EVENTS`] and never trusted for allocation: the reader
/// pre-allocates at most a small capped amount until the stream has
/// actually produced the promised bytes. For `provptr3` the trailing
/// checksum is mandatory: a missing trailer is [`TraceError::Truncated`],
/// a mismatching one is [`TraceError::Corrupt`].
pub fn read_columns<R: Read>(mut r: R) -> Result<TraceColumns, TraceError> {
    let mut magic = [0u8; 8];
    read_exact_or(&mut r, &mut magic, "magic")?;
    if &magic == MAGIC_V3 {
        read_columns_v3(r)
    } else if &magic == MAGIC_V2 {
        read_columns_v2(r)
    } else if &magic == MAGIC_V1 {
        Ok(TraceColumns::from_events(&read_events_v1(r)?))
    } else {
        Err(TraceError::BadMagic)
    }
}

fn read_columns_v3<R: Read>(r: R) -> Result<TraceColumns, TraceError> {
    let mut hr = HashingReader::new(r);
    let cols = read_columns_v2(&mut hr)?;
    let body_hash = hr.hash;
    let mut trailer = [0u8; 8];
    read_exact_or(&mut hr, &mut trailer, "checksum trailer")?;
    let stored = u64::from_le_bytes(trailer);
    if stored != body_hash {
        return Err(TraceError::Corrupt {
            context: format!(
                "checksum mismatch: stored {stored:#018x}, computed {body_hash:#018x}"
            ),
        });
    }
    Ok(cols)
}

fn read_columns_v2<R: Read>(mut r: R) -> Result<TraceColumns, TraceError> {
    let n = read_varint(&mut r, "event count")?;
    if n > MAX_TRACE_EVENTS {
        return Err(TraceError::AbsurdLength {
            claimed: n,
            limit: MAX_TRACE_EVENTS,
        });
    }
    let n_dest = read_varint(&mut r, "dest count")?;
    let n_mem = read_varint(&mut r, "mem count")?;
    let n_store = read_varint(&mut r, "store count")?;
    if n_dest > n || n_mem > n || n_store > n_mem {
        return Err(TraceError::Corrupt {
            context: format!(
                "sparse counts ({n_dest} dest, {n_mem} mem, {n_store} store) \
                 exceed event count {n}"
            ),
        });
    }
    let n = n as usize;

    // Flag column: read what the stream actually holds (capped initial
    // allocation), then check we got everything the header promised.
    let mut flags = Vec::with_capacity(n.min(PREALLOC_CAP));
    r.by_ref()
        .take(n as u64)
        .read_to_end(&mut flags)
        .map_err(TraceError::Io)?;
    if flags.len() < n {
        return Err(TraceError::Truncated {
            context: "flag column",
        });
    }
    // Validate every flag byte and count the populations the sparse
    // columns must match.
    let (mut cd, mut cm, mut cs) = (0u64, 0u64, 0u64);
    for &f in &flags {
        if f & !F_ALL != 0
            || (f & F_DEST_FP != 0 && f & F_DEST == 0)
            || (f & F_MEM_STORE != 0 && f & F_MEM == 0)
            || (f & F_TAKEN != 0 && f & F_BRANCH == 0)
        {
            return Err(TraceError::Corrupt {
                context: format!("invalid flag byte {f:#04x}"),
            });
        }
        cd += u64::from(f & F_DEST != 0);
        cm += u64::from(f & F_MEM != 0);
        cs += u64::from(f & F_MEM_STORE != 0);
    }
    if (cd, cm, cs) != (n_dest, n_mem, n_store) {
        return Err(TraceError::Corrupt {
            context: format!(
                "flag populations ({cd} dest, {cm} mem, {cs} store) disagree \
                 with header counts ({n_dest}, {n_mem}, {n_store})"
            ),
        });
    }
    // The flag column proved `n` is real data, so exact reservations for
    // the remaining columns are safe.
    let (n_dest, n_mem, n_store) = (n_dest as usize, n_mem as usize, n_store as usize);

    let mut addr = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        let d = unzigzag(read_varint(&mut r, "addr column")?);
        let v = prev
            .checked_add(d)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| TraceError::Corrupt {
                context: "instruction address out of range".to_owned(),
            })?;
        addr.push(v);
        prev = i64::from(v);
    }

    let mut next_pc = Vec::with_capacity(n);
    for &a in &addr {
        let d = unzigzag(read_varint(&mut r, "next-pc column")?);
        let v = (i64::from(a) + 1)
            .checked_add(d)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| TraceError::Corrupt {
                context: "next-pc out of range".to_owned(),
            })?;
        next_pc.push(v);
    }

    let mut dest_reg = Vec::with_capacity(n_dest);
    r.by_ref()
        .take(n_dest as u64)
        .read_to_end(&mut dest_reg)
        .map_err(TraceError::Io)?;
    if dest_reg.len() < n_dest {
        return Err(TraceError::Truncated {
            context: "destination register column",
        });
    }
    for &reg in &dest_reg {
        if Reg::try_new(reg).is_none() {
            return Err(TraceError::Corrupt {
                context: format!("register {reg} out of range"),
            });
        }
    }

    let mut dest_val = Vec::with_capacity(n_dest);
    let mut last: HashMap<u32, u64> = HashMap::new();
    for (i, &f) in flags.iter().enumerate() {
        if f & F_DEST != 0 {
            let d = unzigzag(read_varint(&mut r, "destination value column")?) as u64;
            let prev = last.get(&addr[i]).copied().unwrap_or(0);
            let value = prev.wrapping_add(d);
            last.insert(addr[i], value);
            dest_val.push(value);
        }
    }

    let mut mem_addr = Vec::with_capacity(n_mem);
    let mut prev = 0u64;
    for _ in 0..n_mem {
        let d = unzigzag(read_varint(&mut r, "memory address column")?) as u64;
        prev = prev.wrapping_add(d);
        mem_addr.push(prev);
    }

    let mut stored = Vec::with_capacity(n_store);
    let mut prev = 0u64;
    for _ in 0..n_store {
        let d = unzigzag(read_varint(&mut r, "stored value column")?) as u64;
        prev = prev.wrapping_add(d);
        stored.push(prev);
    }

    Ok(TraceColumns::from_raw_parts(
        flags, addr, next_pc, dest_reg, dest_val, mem_addr, stored,
    ))
}

/// Reads the body of a legacy `provptr1` trace (magic already consumed).
fn read_events_v1<R: Read>(mut r: R) -> Result<Vec<TraceEvent>, TraceError> {
    let mut count = [0u8; 8];
    read_exact_or(&mut r, &mut count, "event count")?;
    let count = u64::from_le_bytes(count);
    if count > MAX_TRACE_EVENTS {
        return Err(TraceError::AbsurdLength {
            claimed: count,
            limit: MAX_TRACE_EVENTS,
        });
    }
    // Never size an allocation from the (untrusted) prefix: start capped,
    // let actual parsed events grow the vector.
    let mut events = Vec::with_capacity((count as usize).min(PREALLOC_CAP));
    for _ in 0..count {
        let mut header = [0u8; 9];
        read_exact_or(&mut r, &mut header, "event header")?;
        let flags = header[0];
        let addr = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
        let next_pc = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
        let dest = if flags & F_DEST != 0 {
            let mut buf = [0u8; 9];
            read_exact_or(&mut r, &mut buf, "destination payload")?;
            let reg = Reg::try_new(buf[0]).ok_or_else(|| TraceError::Corrupt {
                context: format!("register {} out of range", buf[0]),
            })?;
            let value = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
            let class = if flags & F_DEST_FP != 0 {
                RegClass::Fp
            } else {
                RegClass::Int
            };
            Some((class, reg, value))
        } else {
            None
        };
        let (mem, stored) = if flags & F_MEM != 0 {
            let mut buf = [0u8; 8];
            read_exact_or(&mut r, &mut buf, "memory payload")?;
            let store = flags & F_MEM_STORE != 0;
            let stored = if store {
                let mut v = [0u8; 8];
                read_exact_or(&mut r, &mut v, "stored value")?;
                Some(u64::from_le_bytes(v))
            } else {
                None
            };
            (
                Some(MemAccess {
                    addr: u64::from_le_bytes(buf),
                    store,
                }),
                stored,
            )
        } else {
            (None, None)
        };
        let taken = (flags & F_BRANCH != 0).then_some(flags & F_TAKEN != 0);
        events.push(TraceEvent {
            addr: InstrAddr::new(addr),
            dest,
            mem,
            stored,
            taken,
            next_pc: InstrAddr::new(next_pc),
        });
    }
    Ok(events)
}

/// Writes the legacy `provptr1` fixed-width format. Kept (hidden) so
/// tests can produce legacy fixtures and prove the backward-compatible
/// read path; production code always writes `provptr2`.
///
/// # Errors
///
/// Propagates writer errors.
#[doc(hidden)]
pub fn write_trace_legacy_v1<W: Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    w.write_all(MAGIC_V1)?;
    w.write_all(&(events.len() as u64).to_le_bytes())?;
    for ev in events {
        let mut flags = 0u8;
        if let Some((class, _, _)) = ev.dest {
            flags |= F_DEST;
            if class == RegClass::Fp {
                flags |= F_DEST_FP;
            }
        }
        if let Some(mem) = ev.mem {
            flags |= F_MEM;
            if mem.store {
                flags |= F_MEM_STORE;
            }
        }
        if let Some(taken) = ev.taken {
            flags |= F_BRANCH;
            if taken {
                flags |= F_TAKEN;
            }
        }
        w.write_all(&[flags])?;
        w.write_all(&ev.addr.index().to_le_bytes())?;
        w.write_all(&ev.next_pc.index().to_le_bytes())?;
        if let Some((_, reg, value)) = ev.dest {
            w.write_all(&[reg.index()])?;
            w.write_all(&value.to_le_bytes())?;
        }
        if let Some(mem) = ev.mem {
            w.write_all(&mem.addr.to_le_bytes())?;
            if mem.store {
                w.write_all(&ev.stored.unwrap_or(0).to_le_bytes())?;
            }
        }
    }
    Ok(())
}

// --- varint / zigzag helpers -------------------------------------------

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R, context: &'static str) -> Result<u64, TraceError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        read_exact_or(r, &mut byte, context)?;
        let low = u64::from(byte[0] & 0x7f);
        if shift > 63 || (shift == 63 && low > 1) {
            return Err(TraceError::Corrupt {
                context: format!("varint overflow in {context}"),
            });
        }
        out |= low << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn read_exact_or<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { context }
        } else {
            TraceError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, InstrMix, RunLimits};
    use vp_isa::asm::assemble;

    fn record(src: &str) -> (Program, Vec<TraceEvent>) {
        let p = assemble(src).unwrap();
        let mut rec = TraceRecorder::new();
        run(&p, &mut rec, RunLimits::default()).unwrap();
        (p, rec.into_events())
    }

    const SAMPLE: &str = ".f64 1.5\nli r1, 0\nli r2, 20\n\
top: fld f1, (r0)\nfadd f2, f2, f1\nsd r1, 5(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";

    #[test]
    fn serialisation_round_trips() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn columnar_format_is_smaller_than_legacy() {
        let (_, events) = record(SAMPLE);
        let mut v2 = Vec::new();
        write_trace(&mut v2, &events).unwrap();
        let mut v1 = Vec::new();
        write_trace_legacy_v1(&mut v1, &events).unwrap();
        assert!(
            v2.len() < v1.len(),
            "columnar spill ({}) not smaller than legacy ({})",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn legacy_v1_format_reads_back() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace_legacy_v1(&mut bytes, &events).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap(), events);
        let trace = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(trace, Trace::from_events(events));
    }

    #[test]
    fn replay_matches_live_tracing() {
        let (p, events) = record(SAMPLE);
        let mut live = InstrMix::new();
        run(&p, &mut live, RunLimits::default()).unwrap();
        let mut replayed = InstrMix::new();
        replay(&p, &events, &mut replayed).unwrap();
        assert_eq!(live, replayed);
    }

    #[test]
    fn replay_rejects_foreign_traces() {
        let (_, events) = record(SAMPLE);
        let other = assemble("halt\n").unwrap();
        let e = replay(&other, &events, &mut crate::NullTracer).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let e = read_trace(&b"notatrace........"[..]).unwrap_err();
        assert!(matches!(e, TraceError::BadMagic), "{e}");
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        bytes.truncate(bytes.len() - 3);
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::Truncated { .. }), "{e}");
    }

    #[test]
    fn absurd_length_prefixes_are_rejected_without_allocation() {
        // v2: claim u64::MAX events, provide nothing.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        write_varint(&mut bytes, u64::MAX).unwrap();
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::AbsurdLength { .. }), "{e}");

        // v1: same attack on the legacy length prefix.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::AbsurdLength { .. }), "{e}");
    }

    #[test]
    fn plausible_length_with_missing_data_is_truncation_not_oom() {
        // A count below the absurdity limit but with no payload must fail
        // on the actual byte shortage, not pre-allocate count elements.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        write_varint(&mut bytes, MAX_TRACE_EVENTS).unwrap(); // n
        write_varint(&mut bytes, 0).unwrap(); // n_dest
        write_varint(&mut bytes, 0).unwrap(); // n_mem
        write_varint(&mut bytes, 0).unwrap(); // n_store
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::Truncated { .. }), "{e}");
    }

    #[test]
    fn inconsistent_flag_populations_are_corrupt() {
        // One event whose flags claim a dest write, but a header that
        // promises zero dest entries.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        write_varint(&mut bytes, 1).unwrap(); // n
        write_varint(&mut bytes, 0).unwrap(); // n_dest
        write_varint(&mut bytes, 0).unwrap(); // n_mem
        write_varint(&mut bytes, 0).unwrap(); // n_store
        bytes.push(F_DEST);
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::Corrupt { .. }), "{e}");
    }

    #[test]
    fn unknown_flag_bits_are_corrupt() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        write_varint(&mut bytes, 1).unwrap();
        write_varint(&mut bytes, 0).unwrap();
        write_varint(&mut bytes, 0).unwrap();
        write_varint(&mut bytes, 0).unwrap();
        bytes.push(0x80); // undefined bit
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::Corrupt { .. }), "{e}");
    }

    #[test]
    fn trace_capture_matches_recorder_and_round_trips() {
        let (p, events) = record(SAMPLE);
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        assert_eq!(trace.iter().collect::<Vec<_>>(), events);
        assert_eq!(trace.len(), events.len());
        assert!(!trace.is_empty());
        assert!(trace.approx_bytes() > 0);

        let mut live = InstrMix::new();
        run(&p, &mut live, RunLimits::default()).unwrap();
        let mut replayed = InstrMix::new();
        trace.replay(&p, &mut replayed).unwrap();
        assert_eq!(live, replayed);

        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        assert_eq!(Trace::read_from(bytes.as_slice()).unwrap(), trace);
    }

    #[test]
    fn event_kinds_are_preserved() {
        let (_, events) = record(SAMPLE);
        assert!(events
            .iter()
            .any(|e| matches!(e.dest, Some((RegClass::Fp, _, _)))));
        assert!(events
            .iter()
            .any(|e| matches!(e.mem, Some(MemAccess { store: true, .. }))));
        assert!(events.iter().any(|e| e.taken == Some(true)));
        assert!(events.iter().any(|e| e.taken == Some(false)));
    }

    #[test]
    fn current_format_is_v3_and_legacy_v2_reads_back() {
        let (_, events) = record(SAMPLE);
        let mut v3 = Vec::new();
        write_trace(&mut v3, &events).unwrap();
        assert_eq!(&v3[..8], MAGIC_V3);

        let mut v2 = Vec::new();
        write_columns_legacy_v2(&mut v2, &TraceColumns::from_events(&events)).unwrap();
        assert_eq!(&v2[..8], MAGIC_V2);
        assert_eq!(read_trace(v2.as_slice()).unwrap(), events);
        // v3 = v2 body + 8-byte checksum trailer.
        assert_eq!(v3.len(), v2.len() + 8);
    }

    #[test]
    fn body_bit_flip_fails_the_checksum() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        // Flip one bit in every body byte position in turn; each corrupted
        // stream must fail with a typed error, never decode silently.
        for i in 8..bytes.len() {
            bytes[i] ^= 0x10;
            let result = read_trace(bytes.as_slice());
            match result {
                Err(
                    TraceError::AbsurdLength { .. }
                    | TraceError::Truncated { .. }
                    | TraceError::Corrupt { .. },
                ) => {}
                other => panic!("flip at byte {i}: expected typed error, got {other:?}"),
            }
            bytes[i] ^= 0x10;
        }
    }

    #[test]
    fn missing_checksum_trailer_is_truncation() {
        let (_, events) = record(SAMPLE);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &events).unwrap();
        bytes.truncate(bytes.len() - 8);
        let e = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, TraceError::Truncated { .. }), "{e}");
    }

    #[test]
    fn divergence_finds_first_difference() {
        let (_, events) = record(SAMPLE);
        assert_eq!(
            first_divergence(events.iter().copied(), events.iter().copied()),
            None
        );

        // A mutated value diverges at its own index.
        let mut mutated = events.clone();
        mutated[3].next_pc = InstrAddr::new(9999);
        let d = first_divergence(events.iter().copied(), mutated.iter().copied()).unwrap();
        assert_eq!(d.index, 3);
        assert_eq!(d.left, Some(events[3]));
        assert_eq!(d.right, Some(mutated[3]));

        // A shorter stream diverges at the missing tail.
        let d = first_divergence(
            events.iter().copied(),
            events[..events.len() - 1].iter().copied(),
        )
        .unwrap();
        assert_eq!(d.index, events.len() - 1);
        assert_eq!(d.right, None);
        assert!(d.to_string().contains("diverge at event"));
    }

    #[test]
    fn varint_round_trips_across_the_range() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut bytes = Vec::new();
            write_varint(&mut bytes, v).unwrap();
            assert!(bytes.len() <= 10);
            assert_eq!(read_varint(&mut bytes.as_slice(), "t").unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
