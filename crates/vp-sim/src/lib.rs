#![warn(missing_docs)]

//! # vp-sim — a functional, tracing instruction-set simulator
//!
//! The `provp` equivalent of the SHADE tracer the paper used for its profile
//! phase: it executes `vp-isa` programs with precise architectural semantics
//! and delivers every retired instruction — including its produced
//! destination value — to a pluggable [`Tracer`].
//!
//! The same trace drives three different consumers in this workspace:
//!
//! 1. `vp-profile` builds the per-static-instruction profile image (phase 2
//!    of the paper's methodology),
//! 2. `vp-ilp` replays the trace through an abstract 40-entry-window machine
//!    to measure extractable ILP (the paper's Section 5.3 machine),
//! 3. experiment code observes predictor behaviour online.
//!
//! ## Example
//!
//! ```
//! use vp_isa::asm::assemble;
//! use vp_sim::{run, RunLimits, Tracer, Retirement};
//!
//! #[derive(Default)]
//! struct CountProducers(u64);
//! impl Tracer for CountProducers {
//!     fn retire(&mut self, ev: &Retirement<'_>) {
//!         if ev.dest.is_some() { self.0 += 1; }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble("li r1, 3\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n")?;
//! let mut tracer = CountProducers::default();
//! let summary = run(&p, &mut tracer, RunLimits::default())?;
//! assert!(summary.halted());
//! assert_eq!(tracer.0, 4); // li + 3 addi
//! # Ok(())
//! # }
//! ```

pub mod columns;
pub mod error;
pub mod exec;
pub mod machine;
pub mod memory;
pub mod mix;
pub mod record;
pub mod runner;
pub mod stream;
pub mod tracer;

pub use columns::{PcShard, TraceColumns};
pub use error::SimError;
pub use exec::{MemAccess, Retirement, StepOutcome};
pub use machine::Machine;
pub use memory::Memory;
pub use mix::InstrMix;
pub use record::{
    first_divergence, read_columns, read_trace, replay, write_columns, write_trace, Trace,
    TraceDivergence, TraceError, TraceEvent, TraceRecorder, MAX_TRACE_EVENTS,
};
pub use runner::{run, RunLimits, RunStatus, RunSummary};
pub use stream::{ValueBlockSink, ValueBlockTracer, VALUE_BLOCK};
pub use tracer::{ChainTracer, FnTracer, NullTracer, Tracer};
