//! Architectural machine state.

use vp_isa::{InstrAddr, Program, Reg, RegClass};

use crate::Memory;

/// Architectural state: both register files, the program counter and memory.
///
/// The integer register `r0` is hardwired to zero: writes are discarded and
/// reads return 0. The floating-point file has no such register.
///
/// # Examples
///
/// ```
/// use vp_sim::Machine;
/// use vp_isa::{asm::assemble, Reg, RegClass};
///
/// let p = assemble("halt\n").unwrap();
/// let mut m = Machine::for_program(&p);
/// m.write_reg(RegClass::Int, Reg::new(4), 42);
/// assert_eq!(m.read_reg(RegClass::Int, Reg::new(4)), 42);
/// m.write_reg(RegClass::Int, Reg::ZERO, 9);
/// assert_eq!(m.read_reg(RegClass::Int, Reg::ZERO), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    int_regs: [u64; vp_isa::reg::NUM_REGS],
    fp_regs: [u64; vp_isa::reg::NUM_REGS],
    pc: InstrAddr,
    mem: Memory,
}

impl Machine {
    /// Creates a machine with zeroed registers, `pc = 0` and memory
    /// initialised from the program's data image.
    #[must_use]
    pub fn for_program(program: &Program) -> Self {
        Machine {
            int_regs: [0; vp_isa::reg::NUM_REGS],
            fp_regs: [0; vp_isa::reg::NUM_REGS],
            pc: InstrAddr::new(0),
            mem: Memory::with_image(program.data()),
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> InstrAddr {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: InstrAddr) {
        self.pc = pc;
    }

    /// Reads a register from the given file.
    #[must_use]
    pub fn read_reg(&self, class: RegClass, reg: Reg) -> u64 {
        match class {
            RegClass::Int => {
                if reg.is_zero() {
                    0
                } else {
                    self.int_regs[usize::from(reg)]
                }
            }
            RegClass::Fp => self.fp_regs[usize::from(reg)],
        }
    }

    /// Reads an FP register as a double.
    #[must_use]
    pub fn read_f64(&self, reg: Reg) -> f64 {
        f64::from_bits(self.fp_regs[usize::from(reg)])
    }

    /// Writes a register in the given file. Writes to integer `r0` are
    /// discarded.
    pub fn write_reg(&mut self, class: RegClass, reg: Reg, value: u64) {
        match class {
            RegClass::Int => {
                if !reg.is_zero() {
                    self.int_regs[usize::from(reg)] = value;
                }
            }
            RegClass::Fp => self.fp_regs[usize::from(reg)] = value,
        }
    }

    /// Writes an FP register from a double.
    pub fn write_f64(&mut self, reg: Reg, value: f64) {
        self.fp_regs[usize::from(reg)] = value.to_bits();
    }

    /// The machine's memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the machine's memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;

    fn machine() -> Machine {
        Machine::for_program(&assemble(".data 11 22\nhalt\n").unwrap())
    }

    #[test]
    fn data_image_is_loaded() {
        let mut m = machine();
        assert_eq!(m.memory_mut().read(0), 11);
        assert_eq!(m.memory_mut().read(1), 22);
    }

    #[test]
    fn int_zero_register_discards_writes() {
        let mut m = machine();
        m.write_reg(RegClass::Int, Reg::ZERO, 5);
        assert_eq!(m.read_reg(RegClass::Int, Reg::ZERO), 0);
    }

    #[test]
    fn fp_register_zero_is_writable() {
        let mut m = machine();
        m.write_f64(Reg::ZERO, 1.5);
        assert_eq!(m.read_f64(Reg::ZERO), 1.5);
        // The files are independent.
        assert_eq!(m.read_reg(RegClass::Int, Reg::ZERO), 0);
    }

    #[test]
    fn files_are_independent() {
        let mut m = machine();
        m.write_reg(RegClass::Int, Reg::new(3), 10);
        m.write_reg(RegClass::Fp, Reg::new(3), 20);
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(3)), 10);
        assert_eq!(m.read_reg(RegClass::Fp, Reg::new(3)), 20);
    }
}
