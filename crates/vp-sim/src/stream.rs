//! Incremental columnar value-event emission.
//!
//! The batch pipeline captures a whole [`crate::Trace`] before anything
//! replays it; a streaming pipeline instead consumes the value-event
//! column *while the simulation runs*. [`ValueBlockTracer`] is the
//! producer half of that pipeline: a [`Tracer`] that packs each retired
//! destination write into a pair of columnar buffers and hands every
//! full block of [`VALUE_BLOCK`] events to a [`ValueBlockSink`].
//!
//! The sink returns an *empty* buffer pair in exchange for each full one,
//! so a fixed pool of buffers circulates between producer and consumer —
//! no per-block allocation, and (with a bounded sink) no unbounded
//! queueing. A blocking `submit` is the backpressure mechanism: the
//! simulation simply stalls inside [`Tracer::retire`] until the consumer
//! frees a buffer.
//!
//! The emitted event stream is exactly the trace's value-event column:
//! concatenating the submitted blocks (including the partial block from
//! [`ValueBlockTracer::finish`]) yields the same `(addr, value)` sequence
//! as [`crate::TraceColumns::value_events`] on a captured trace of the
//! same run.

use vp_isa::InstrAddr;

use crate::{Retirement, Tracer};

/// Value events per emitted block. Matches the fused replay kernel's
/// block size so a streamed block feeds one `access_batch` call per
/// predictor without re-buffering.
pub const VALUE_BLOCK: usize = 1024;

/// Receives full value-event blocks from a [`ValueBlockTracer`].
///
/// `submit` consumes a filled `(addrs, values)` pair (equal lengths, at
/// most [`VALUE_BLOCK`] events — shorter only for the final flush) and
/// returns an empty pair for the tracer to fill next. Implementations
/// that bound their queue block inside `submit` until a buffer frees up;
/// that stall propagates straight into the simulation loop.
pub trait ValueBlockSink {
    /// Accepts a filled block, returns a recycled empty buffer pair.
    fn submit(&mut self, addrs: Vec<InstrAddr>, values: Vec<u64>) -> (Vec<InstrAddr>, Vec<u64>);
}

impl<S: ValueBlockSink + ?Sized> ValueBlockSink for &mut S {
    fn submit(&mut self, addrs: Vec<InstrAddr>, values: Vec<u64>) -> (Vec<InstrAddr>, Vec<u64>) {
        (**self).submit(addrs, values)
    }
}

/// A [`Tracer`] that emits the run's destination writes as columnar
/// blocks instead of recording a resident trace.
///
/// Attach to [`crate::run`] (or chain with other tracers), then call
/// [`ValueBlockTracer::finish`] to flush the final partial block.
#[derive(Debug)]
pub struct ValueBlockTracer<S: ValueBlockSink> {
    sink: S,
    addrs: Vec<InstrAddr>,
    values: Vec<u64>,
}

impl<S: ValueBlockSink> ValueBlockTracer<S> {
    /// A tracer emitting into `sink`.
    pub fn new(sink: S) -> Self {
        ValueBlockTracer {
            sink,
            addrs: Vec::with_capacity(VALUE_BLOCK),
            values: Vec::with_capacity(VALUE_BLOCK),
        }
    }

    /// Flushes the trailing partial block (if any) and returns the sink.
    pub fn finish(mut self) -> S {
        if !self.addrs.is_empty() {
            let addrs = std::mem::take(&mut self.addrs);
            let values = std::mem::take(&mut self.values);
            let _ = self.sink.submit(addrs, values);
        }
        self.sink
    }
}

impl<S: ValueBlockSink> Tracer for ValueBlockTracer<S> {
    fn retire(&mut self, ev: &Retirement<'_>) {
        let Some((_, _, value)) = ev.dest else { return };
        self.addrs.push(ev.addr);
        self.values.push(value);
        if self.addrs.len() == VALUE_BLOCK {
            let addrs = std::mem::take(&mut self.addrs);
            let values = std::mem::take(&mut self.values);
            let (mut addrs, mut values) = self.sink.submit(addrs, values);
            addrs.clear();
            values.clear();
            self.addrs = addrs;
            self.values = values;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, RunLimits, Trace};
    use vp_isa::asm::assemble;

    /// Collects every submitted block, recycling one spare buffer pair.
    #[derive(Default)]
    struct Collect {
        blocks: Vec<(Vec<InstrAddr>, Vec<u64>)>,
    }

    impl ValueBlockSink for Collect {
        fn submit(
            &mut self,
            addrs: Vec<InstrAddr>,
            values: Vec<u64>,
        ) -> (Vec<InstrAddr>, Vec<u64>) {
            self.blocks.push((addrs, values));
            (Vec::new(), Vec::new())
        }
    }

    #[test]
    fn streamed_blocks_equal_captured_value_events() {
        // ~3k value events: several full blocks plus a partial tail.
        let p = assemble(
            "li r1, 0\nli r2, 1500\n\
             top: addi r1, r1, 1\nadd r3, r1, r2\nbne r1, r2, top\nhalt\n",
        )
        .unwrap();
        let limits = RunLimits::default();
        let trace = Trace::capture(&p, limits).unwrap();

        let mut tracer = ValueBlockTracer::new(Collect::default());
        run(&p, &mut tracer, limits).unwrap();
        let sink = tracer.finish();

        let mut streamed: Vec<(InstrAddr, u64)> = Vec::new();
        for (i, (addrs, values)) in sink.blocks.iter().enumerate() {
            assert_eq!(addrs.len(), values.len());
            assert!(addrs.len() <= VALUE_BLOCK);
            if i + 1 < sink.blocks.len() {
                assert_eq!(addrs.len(), VALUE_BLOCK, "only the tail may be partial");
            }
            streamed.extend(addrs.iter().copied().zip(values.iter().copied()));
        }
        let captured: Vec<(InstrAddr, u64)> = trace.columns().value_events().collect();
        assert_eq!(streamed, captured);
        assert!(sink.blocks.len() >= 2, "test must exercise multiple blocks");
    }

    #[test]
    fn finish_without_events_submits_nothing() {
        let p = assemble("halt\n").unwrap();
        let mut tracer = ValueBlockTracer::new(Collect::default());
        run(&p, &mut tracer, RunLimits::default()).unwrap();
        let sink = tracer.finish();
        assert!(sink.blocks.is_empty());
    }
}
