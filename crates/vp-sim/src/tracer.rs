//! Trace consumers.
//!
//! A [`Tracer`] observes every retired instruction, playing the role SHADE's
//! analyzer hooks played for the paper: the profiler, the ILP machine and
//! online predictor evaluations are all tracers.

use crate::Retirement;

/// Observes retired instructions.
///
/// Implementations should be cheap: the simulator calls
/// [`Tracer::retire`] once per dynamic instruction.
pub trait Tracer {
    /// Called after each instruction retires, with its full effect.
    fn retire(&mut self, ev: &Retirement<'_>);
}

/// A tracer that discards everything (for running programs purely for their
/// architectural effect).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn retire(&mut self, _ev: &Retirement<'_>) {}
}

/// Adapts a closure into a [`Tracer`].
///
/// ```
/// use vp_sim::{FnTracer, Tracer};
/// let mut count = 0u64;
/// {
///     let mut t = FnTracer::new(|_ev| count += 1);
///     // ... pass &mut t to vp_sim::run ...
///     # let _ = &mut t;
/// }
/// assert_eq!(count, 0);
/// ```
#[derive(Debug)]
pub struct FnTracer<F>(F);

impl<F: FnMut(&Retirement<'_>)> FnTracer<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnTracer(f)
    }
}

impl<F: FnMut(&Retirement<'_>)> Tracer for FnTracer<F> {
    fn retire(&mut self, ev: &Retirement<'_>) {
        (self.0)(ev);
    }
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    fn retire(&mut self, ev: &Retirement<'_>) {
        (**self).retire(ev);
    }
}

/// Fans one trace out to two tracers, in order.
///
/// Chains compose: `ChainTracer::new(a, ChainTracer::new(b, c))`.
#[derive(Debug, Default)]
pub struct ChainTracer<A, B> {
    first: A,
    second: B,
}

impl<A: Tracer, B: Tracer> ChainTracer<A, B> {
    /// Creates a tracer that forwards to `first`, then `second`.
    pub fn new(first: A, second: B) -> Self {
        ChainTracer { first, second }
    }

    /// Consumes the chain and returns both tracers.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Tracer, B: Tracer> Tracer for ChainTracer<A, B> {
    fn retire(&mut self, ev: &Retirement<'_>) {
        self.first.retire(ev);
        self.second.retire(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, RunLimits};
    use vp_isa::asm::assemble;

    #[test]
    fn chain_sees_events_in_order() {
        let p = assemble("li r1, 1\nhalt\n").unwrap();
        let mut log: Vec<&'static str> = Vec::new();
        {
            let log = std::cell::RefCell::new(&mut log);
            let a = FnTracer::new(|_: &Retirement<'_>| log.borrow_mut().push("a"));
            let b = FnTracer::new(|_: &Retirement<'_>| log.borrow_mut().push("b"));
            let mut chain = ChainTracer::new(a, b);
            run(&p, &mut chain, RunLimits::default()).unwrap();
        }
        assert_eq!(log, vec!["a", "b", "a", "b"]);
    }

    #[test]
    fn null_tracer_runs() {
        let p = assemble("li r1, 1\nhalt\n").unwrap();
        let summary = run(&p, &mut NullTracer, RunLimits::default()).unwrap();
        assert_eq!(summary.instructions(), 2);
    }
}
