//! Single-step instruction semantics.
//!
//! Arithmetic is trap-free by definition (like most simulators' functional
//! mode): integer division by zero yields 0, remainder by zero yields the
//! dividend, shift amounts are masked to 6 bits, and overflow wraps. This
//! keeps every workload deterministic without fault handling.

use vp_isa::{Instr, InstrAddr, Opcode, Program, Reg, RegClass};

use crate::{Machine, SimError};

/// A retired instruction delivered to a [`crate::Tracer`].
///
/// This is the unit of the SHADE-style trace: the paper's profile phase
/// consumes exactly `(static address, destination value)` pairs, and the ILP
/// machine additionally uses sources and memory effects.
#[derive(Debug, Clone, Copy)]
pub struct Retirement<'a> {
    /// Static address of the retired instruction.
    pub addr: InstrAddr,
    /// The instruction itself.
    pub instr: &'a Instr,
    /// Destination write, if the instruction produced a value:
    /// `(class, register, value)`. FP values are raw `f64` bits.
    pub dest: Option<(RegClass, Reg, u64)>,
    /// Memory effect, if any.
    pub mem: Option<MemAccess>,
    /// For stores: the value written to memory (the paper's §2.1 notes the
    /// prediction schemes "could be generalized and applied to memory
    /// storage operands"; this field lets the profiler measure that).
    pub stored: Option<u64>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// Program counter after this instruction.
    pub next_pc: InstrAddr,
}

/// A memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Word address accessed.
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub store: bool,
}

/// Result of one [`step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Execution continues at `machine.pc()`.
    Continue,
    /// A `halt` retired; the machine is stopped.
    Halted,
}

/// Executes the instruction at the machine's current PC and invokes
/// `on_retire` with the retirement record.
///
/// # Errors
///
/// - [`SimError::PcOutOfRange`] when the PC does not name a text-segment
///   instruction.
/// - [`SimError::TargetOverflow`] when a branch target leaves the 32-bit
///   instruction address space.
pub fn step<'a>(
    machine: &mut Machine,
    program: &'a Program,
    mut on_retire: impl FnMut(&Retirement<'a>),
) -> Result<StepOutcome, SimError> {
    let pc = machine.pc();
    let instr = program.fetch(pc).ok_or(SimError::PcOutOfRange {
        pc,
        text_len: program.len(),
    })?;

    let ir = |r: Reg| machine.read_reg(RegClass::Int, r);
    let fr = |r: Reg| machine.read_f64(r);
    let i = |v: u64| v as i64;

    let mut dest: Option<u64> = None;
    let mut mem: Option<MemAccess> = None;
    let mut stored: Option<u64> = None;
    let mut taken: Option<bool> = None;
    let mut next_pc = pc.next();
    let mut halted = false;

    use Opcode::*;
    match instr.op {
        // ----- integer register-register -----
        Add => dest = Some(ir(instr.rs1).wrapping_add(ir(instr.rs2))),
        Sub => dest = Some(ir(instr.rs1).wrapping_sub(ir(instr.rs2))),
        Mul => dest = Some(ir(instr.rs1).wrapping_mul(ir(instr.rs2))),
        Div => {
            let (a, b) = (i(ir(instr.rs1)), i(ir(instr.rs2)));
            dest = Some(if b == 0 { 0 } else { a.wrapping_div(b) } as u64);
        }
        Rem => {
            let (a, b) = (i(ir(instr.rs1)), i(ir(instr.rs2)));
            dest = Some(if b == 0 { a } else { a.wrapping_rem(b) } as u64);
        }
        And => dest = Some(ir(instr.rs1) & ir(instr.rs2)),
        Or => dest = Some(ir(instr.rs1) | ir(instr.rs2)),
        Xor => dest = Some(ir(instr.rs1) ^ ir(instr.rs2)),
        Sll => dest = Some(ir(instr.rs1) << (ir(instr.rs2) & 63)),
        Srl => dest = Some(ir(instr.rs1) >> (ir(instr.rs2) & 63)),
        Sra => dest = Some((i(ir(instr.rs1)) >> (ir(instr.rs2) & 63)) as u64),
        Slt => dest = Some(u64::from(i(ir(instr.rs1)) < i(ir(instr.rs2)))),
        Sltu => dest = Some(u64::from(ir(instr.rs1) < ir(instr.rs2))),

        // ----- integer register-immediate -----
        Addi => dest = Some(ir(instr.rs1).wrapping_add(instr.imm as u64)),
        Andi => dest = Some(ir(instr.rs1) & instr.imm as u64),
        Ori => dest = Some(ir(instr.rs1) | instr.imm as u64),
        Xori => dest = Some(ir(instr.rs1) ^ instr.imm as u64),
        Slli => dest = Some(ir(instr.rs1) << (instr.imm as u64 & 63)),
        Srli => dest = Some(ir(instr.rs1) >> (instr.imm as u64 & 63)),
        Srai => dest = Some((i(ir(instr.rs1)) >> (instr.imm as u64 & 63)) as u64),
        Slti => dest = Some(u64::from(i(ir(instr.rs1)) < instr.imm)),
        Muli => dest = Some(ir(instr.rs1).wrapping_mul(instr.imm as u64)),

        // ----- constants & moves -----
        Li => dest = Some(instr.imm as u64),
        Mv => dest = Some(ir(instr.rs1)),

        // ----- memory -----
        Ld | Fld => {
            let addr = ir(instr.rs1).wrapping_add(instr.imm as u64);
            dest = Some(machine.memory_mut().read(addr));
            mem = Some(MemAccess { addr, store: false });
        }
        Sd | Fsd => {
            let addr = ir(instr.rs1).wrapping_add(instr.imm as u64);
            let class = if instr.op == Fsd {
                RegClass::Fp
            } else {
                RegClass::Int
            };
            let value = machine.read_reg(class, instr.rs2);
            machine.memory_mut().write(addr, value);
            mem = Some(MemAccess { addr, store: true });
            stored = Some(value);
        }

        // ----- floating point -----
        Fadd => dest = Some((fr(instr.rs1) + fr(instr.rs2)).to_bits()),
        Fsub => dest = Some((fr(instr.rs1) - fr(instr.rs2)).to_bits()),
        Fmul => dest = Some((fr(instr.rs1) * fr(instr.rs2)).to_bits()),
        Fdiv => dest = Some((fr(instr.rs1) / fr(instr.rs2)).to_bits()),
        Fmin => dest = Some(fr(instr.rs1).min(fr(instr.rs2)).to_bits()),
        Fmax => dest = Some(fr(instr.rs1).max(fr(instr.rs2)).to_bits()),
        Fneg => dest = Some((-fr(instr.rs1)).to_bits()),
        Fmv => dest = Some(fr(instr.rs1).to_bits()),
        CvtIf => dest = Some((i(ir(instr.rs1)) as f64).to_bits()),
        CvtFi => {
            let v = fr(instr.rs1);
            let t = if v.is_nan() { 0 } else { v as i64 };
            dest = Some(t as u64);
        }
        Feq => dest = Some(u64::from(fr(instr.rs1) == fr(instr.rs2))),
        Flt => dest = Some(u64::from(fr(instr.rs1) < fr(instr.rs2))),
        Fle => dest = Some(u64::from(fr(instr.rs1) <= fr(instr.rs2))),

        // ----- control flow -----
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let (a, b) = (ir(instr.rs1), ir(instr.rs2));
            let t = match instr.op {
                Beq => a == b,
                Bne => a != b,
                Blt => i(a) < i(b),
                Bge => i(a) >= i(b),
                Bltu => a < b,
                Bgeu => a >= b,
                _ => unreachable!(),
            };
            taken = Some(t);
            if t {
                next_pc =
                    branch_target(pc, instr.imm).ok_or(SimError::TargetOverflow { at: pc })?;
            }
        }
        Jal => {
            dest = Some(u64::from(pc.next().index()));
            next_pc = branch_target(pc, instr.imm).ok_or(SimError::TargetOverflow { at: pc })?;
        }
        Jalr => {
            dest = Some(u64::from(pc.next().index()));
            let target = ir(instr.rs1).wrapping_add(instr.imm as u64);
            next_pc = u32::try_from(target)
                .map(InstrAddr::new)
                .map_err(|_| SimError::TargetOverflow { at: pc })?;
        }

        // ----- system -----
        Nop => {}
        Halt => halted = true,
    }

    // Commit the destination (honouring the hardwired integer zero register)
    // and report the *architecturally visible* write only.
    let dest = match (instr.dest(), dest) {
        (Some((class, rd)), Some(value)) => {
            machine.write_reg(class, rd, value);
            Some((class, rd, value))
        }
        _ => None,
    };

    machine.set_pc(next_pc);
    let retirement = Retirement {
        addr: pc,
        instr,
        dest,
        mem,
        stored,
        taken,
        next_pc,
    };
    on_retire(&retirement);
    Ok(if halted {
        StepOutcome::Halted
    } else {
        StepOutcome::Continue
    })
}

fn branch_target(pc: InstrAddr, imm: i64) -> Option<InstrAddr> {
    i32::try_from(imm).ok().and_then(|d| pc.offset(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;

    fn exec(src: &str) -> (Machine, Vec<(u32, Option<u64>)>) {
        let p = assemble(src).unwrap();
        let mut m = Machine::for_program(&p);
        let mut log = Vec::new();
        for _ in 0..10_000 {
            let out = step(&mut m, &p, |ev| {
                log.push((ev.addr.index(), ev.dest.map(|(_, _, v)| v)));
            })
            .unwrap();
            if out == StepOutcome::Halted {
                return (m, log);
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_basics() {
        let (m, _) = exec(
            "li r1, 7\nli r2, 3\nadd r3, r1, r2\nsub r4, r1, r2\nmul r5, r1, r2\ndiv r6, r1, r2\nrem r7, r1, r2\nhalt\n",
        );
        let v = |r| m.read_reg(RegClass::Int, Reg::new(r));
        assert_eq!((v(3), v(4), v(5), v(6), v(7)), (10, 4, 21, 2, 1));
    }

    #[test]
    fn division_by_zero_is_defined() {
        let (m, _) = exec("li r1, 9\ndiv r2, r1, r0\nrem r3, r1, r0\nhalt\n");
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(2)), 0);
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(3)), 9);
    }

    #[test]
    fn signed_vs_unsigned_compares() {
        let (m, _) = exec("li r1, -1\nli r2, 1\nslt r3, r1, r2\nsltu r4, r1, r2\nhalt\n");
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(3)), 1);
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(4)), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        let (m, _) = exec("li r1, 1\nli r2, 65\nsll r3, r1, r2\nli r4, -8\nsra r5, r4, r1\nhalt\n");
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(3)), 2); // 65 & 63 == 1
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(5)) as i64, -4);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let (mut m, log) =
            exec(".data 100 200\nld r1, 1(r0)\naddi r2, r1, 1\nsd r2, 5(r0)\nld r3, 5(r0)\nhalt\n");
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(3)), 201);
        assert_eq!(m.memory_mut().read(5), 201);
        // The store produces no dest value.
        assert_eq!(log[2].1, None);
    }

    #[test]
    fn fp_pipeline() {
        let (m, _) = exec(
            ".f64 1.5 2.5\nfld f1, (r0)\nfld f2, 1(r0)\nfadd f3, f1, f2\nfmul f4, f3, f3\nflt r5, f1, f2\ncvt.f.i r6, f4\nhalt\n",
        );
        assert_eq!(m.read_f64(Reg::new(3)), 4.0);
        assert_eq!(m.read_f64(Reg::new(4)), 16.0);
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(5)), 1);
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(6)), 16);
    }

    #[test]
    fn loop_retires_expected_stream() {
        let (_, log) = exec("li r1, 2\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n");
        let addrs: Vec<u32> = log.iter().map(|(a, _)| *a).collect();
        assert_eq!(addrs, vec![0, 1, 2, 1, 2, 3]);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let (_, log) = exec("jal r31, fun\nhalt\nfun: li r1, 1\njalr r0, r31, 0\n");
        let addrs: Vec<u32> = log.iter().map(|(a, _)| *a).collect();
        assert_eq!(addrs, vec![0, 2, 3, 1]);
        // jal wrote the link value 1.
        assert_eq!(log[0].1, Some(1));
    }

    #[test]
    fn writes_to_r0_are_not_reported_as_dest() {
        let (_, log) = exec("add r0, r0, r0\nhalt\n");
        assert_eq!(log[0].1, None);
    }

    #[test]
    fn pc_out_of_range_faults() {
        let p = assemble("nop\n").unwrap(); // no halt: falls off the end
        let mut m = Machine::for_program(&p);
        assert!(step(&mut m, &p, |_| {}).is_ok());
        let e = step(&mut m, &p, |_| {}).unwrap_err();
        assert!(matches!(e, SimError::PcOutOfRange { .. }));
    }

    #[test]
    fn unsigned_branches_differ_from_signed() {
        // r1 = -1 (huge unsigned), r2 = 1.
        let (_, log) = exec(
            "li r1, -1\nli r2, 1\nbltu r1, r2, never\nbgeu r1, r2, taken\nnever: li r3, 99\ntaken: halt\n",
        );
        let addrs: Vec<u32> = log.iter().map(|(a, _)| *a).collect();
        // bltu not taken (unsigned -1 is max), bgeu taken, skipping @4.
        assert_eq!(addrs, vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn fmin_fmax_follow_ieee_total_order_for_ordinary_values() {
        let (m, _) = exec(
            ".f64 2.5 -3.0\nfld f1, (r0)\nfld f2, 1(r0)\nfmin f3, f1, f2\nfmax f4, f1, f2\nhalt\n",
        );
        assert_eq!(m.read_f64(Reg::new(3)), -3.0);
        assert_eq!(m.read_f64(Reg::new(4)), 2.5);
    }

    #[test]
    fn jalr_faults_on_unrepresentable_target() {
        let p = assemble("li r1, -5\njalr r0, r1, 0\nhalt\n").unwrap();
        let mut m = Machine::for_program(&p);
        step(&mut m, &p, |_| {}).unwrap();
        let e = step(&mut m, &p, |_| {}).unwrap_err();
        assert!(matches!(e, SimError::TargetOverflow { .. }), "{e:?}");
    }

    #[test]
    fn branch_retirement_reports_taken_flag() {
        let p = assemble("li r1, 1\nbne r1, r0, t\nt: beq r1, r0, t\nhalt\n").unwrap();
        let mut m = Machine::for_program(&p);
        let mut taken_flags = Vec::new();
        for _ in 0..4 {
            let _ = step(&mut m, &p, |ev| taken_flags.push(ev.taken)).unwrap();
        }
        assert_eq!(taken_flags, vec![None, Some(true), Some(false), None]);
    }

    #[test]
    fn nan_conversion_is_defined() {
        let (m, _) = exec(".f64 0.0\nfld f1, (r0)\nfdiv f2, f1, f1\ncvt.f.i r3, f2\nhalt\n");
        assert_eq!(m.read_reg(RegClass::Int, Reg::new(3)), 0);
    }
}
