//! Sparse, word-addressed memory.
//!
//! The machine's memory is an array of 64-bit words indexed by `u64` word
//! addresses. It is backed by lazily allocated fixed-size pages, so workloads
//! can scatter data across a large address space without cost. Unwritten
//! words read as zero, like a zero-filled address space.

use std::collections::HashMap;

/// Words per page. A power of two so address splitting is a shift/mask.
const PAGE_WORDS: usize = 1 << 12;

/// Sparse word-addressed memory with zero-fill semantics.
///
/// # Examples
///
/// ```
/// use vp_sim::Memory;
/// let mut m = Memory::new();
/// assert_eq!(m.read(123), 0);
/// m.write(123, 7);
/// assert_eq!(m.read(123), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
    reads: u64,
    writes: u64,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Creates a memory whose low words hold `image` (the program's data
    /// segment), starting at word address 0.
    #[must_use]
    pub fn with_image(image: &[u64]) -> Self {
        let mut m = Memory::new();
        for (i, &w) in image.iter().enumerate() {
            if w != 0 {
                m.write(i as u64, w);
            }
        }
        m.reads = 0;
        m.writes = 0;
        m
    }

    /// Reads the word at `addr` (zero if never written).
    pub fn read(&mut self, addr: u64) -> u64 {
        self.reads += 1;
        let (page, offset) = split(addr);
        self.pages.get(&page).map_or(0, |p| p[offset])
    }

    /// Reads without counting as an access (for debugging / assertions).
    #[must_use]
    pub fn peek(&self, addr: u64) -> u64 {
        let (page, offset) = split(addr);
        self.pages.get(&page).map_or(0, |p| p[offset])
    }

    /// Writes the word at `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        self.writes += 1;
        let (page, offset) = split(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[offset] = value;
    }

    /// Number of pages that have been materialised.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total counted read accesses.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total counted write accesses.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

fn split(addr: u64) -> (u64, usize) {
    (
        addr / PAGE_WORDS as u64,
        (addr % PAGE_WORDS as u64) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let mut m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u64::MAX), 0);
    }

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut m = Memory::new();
        let addrs = [
            0u64,
            1,
            PAGE_WORDS as u64 - 1,
            PAGE_WORDS as u64,
            10 * PAGE_WORDS as u64 + 17,
        ];
        for (i, &a) in addrs.iter().enumerate() {
            m.write(a, i as u64 + 100);
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(m.read(a), i as u64 + 100);
        }
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn image_loads_at_zero_and_resets_counters() {
        let mut m = Memory::with_image(&[5, 0, 7]);
        assert_eq!(m.read(0), 5);
        assert_eq!(m.read(1), 0);
        assert_eq!(m.read(2), 7);
        assert_eq!(m.writes(), 0);
        assert_eq!(m.reads(), 3);
    }

    #[test]
    fn peek_does_not_count() {
        let m = Memory::with_image(&[9]);
        assert_eq!(m.peek(0), 9);
        assert_eq!(m.reads(), 0);
    }

    #[test]
    fn access_counters_track() {
        let mut m = Memory::new();
        m.write(1, 1);
        m.write(2, 2);
        m.read(1);
        assert_eq!((m.reads(), m.writes()), (1, 2));
    }
}
