//! Property tests for the paper's intersection-merge rule
//! (`merge::intersect_and_sum`): the merged image is exactly the
//! intersection of the inputs, and dynamic executions are conserved —
//! merged executions plus omitted executions account for every execution
//! in every input image.

use std::collections::BTreeSet;

use vp_isa::InstrAddr;
use vp_profile::{merge, InstrProfile, ProfileImage, VpCategory};
use vp_rng::{prop, Rng};

/// The category is a function of the address (as it is in real profiles,
/// where the category is a static property of the instruction).
fn category_of(addr: u32) -> VpCategory {
    match addr % 4 {
        0 => VpCategory::IntAlu,
        1 => VpCategory::IntLoad,
        2 => VpCategory::FpAlu,
        _ => VpCategory::FpLoad,
    }
}

fn arb_record(rng: &mut Rng, addr: u32) -> InstrProfile {
    let execs = rng.gen_range(1..1000u64);
    InstrProfile {
        category: category_of(addr),
        execs,
        stride_correct: rng.gen_range(0..=execs),
        nonzero_stride_correct: rng.gen_range(0..=execs),
        last_value_correct: rng.gen_range(0..=execs),
    }
}

fn arb_image(rng: &mut Rng, run: usize) -> ProfileImage {
    let mut img = ProfileImage::new(format!("run{run}"));
    // Sparse address sets so intersections are non-trivial: each run sees
    // each static instruction with ~60% probability.
    for addr in 0..rng.gen_range(1..80u32) {
        if rng.gen_bool(0.6) {
            img.insert(InstrAddr::new(addr), arb_record(rng, addr));
        }
    }
    img
}

fn arb_images(rng: &mut Rng) -> Vec<ProfileImage> {
    let runs = rng.gen_range(1..6usize);
    (0..runs).map(|r| arb_image(rng, r)).collect()
}

fn addr_set(img: &ProfileImage) -> BTreeSet<InstrAddr> {
    img.addrs().collect()
}

/// The merged address set is exactly the intersection of the inputs — a
/// subset of every input image.
#[test]
fn prop_merged_is_the_intersection() {
    prop::forall("merged image = intersection of inputs", arb_images).check(|images| {
        let out = merge::intersect_and_sum(images);
        let merged = addr_set(&out.image);

        let mut expected = addr_set(&images[0]);
        for img in &images[1..] {
            let s = addr_set(img);
            expected = expected.intersection(&s).copied().collect();
        }
        assert_eq!(
            merged, expected,
            "merged set must be the exact intersection"
        );
        for (i, img) in images.iter().enumerate() {
            assert!(
                merged.is_subset(&addr_set(img)),
                "merged image is not a subset of input {i}"
            );
        }
    });
}

/// Execution conservation: `merged + omitted == Σ inputs`, counting the
/// executions of omitted (non-common) instructions across all runs.
#[test]
fn prop_executions_are_conserved() {
    prop::forall("merged + omitted executions = total", arb_images).check(|images| {
        let out = merge::intersect_and_sum(images);
        let total: u64 = images.iter().map(ProfileImage::total_execs).sum();
        let omitted_execs: u64 = images
            .iter()
            .flat_map(|img| img.iter())
            .filter(|(addr, _)| out.image.get(*addr).is_none())
            .map(|(_, r)| r.execs)
            .sum();
        assert_eq!(
            out.image.total_execs() + omitted_execs,
            total,
            "executions lost or invented by the merge"
        );
    });
}

/// Per-instruction counts are the sums over runs, and the omitted count
/// is the union minus the intersection.
#[test]
fn prop_counts_sum_and_omitted_counts_union_gap() {
    prop::forall("per-address sums and omitted count", arb_images).check(|images| {
        let out = merge::intersect_and_sum(images);
        for (addr, rec) in out.image.iter() {
            let execs: u64 = images.iter().map(|i| i.get(addr).unwrap().execs).sum();
            let stride: u64 = images
                .iter()
                .map(|i| i.get(addr).unwrap().stride_correct)
                .sum();
            let last: u64 = images
                .iter()
                .map(|i| i.get(addr).unwrap().last_value_correct)
                .sum();
            assert_eq!(rec.execs, execs, "{addr}: execs not summed");
            assert_eq!(rec.stride_correct, stride, "{addr}: stride not summed");
            assert_eq!(
                rec.last_value_correct, last,
                "{addr}: last-value not summed"
            );
        }

        let union: BTreeSet<InstrAddr> = images.iter().flat_map(|i| i.addrs()).collect();
        assert_eq!(out.omitted, union.len() - out.image.len());
    });
}

/// Merging a single image is the identity on its contents.
#[test]
fn prop_single_image_merge_is_identity() {
    prop::forall("merge of one image is identity", |rng| arb_image(rng, 0)).check(|image| {
        let out = merge::intersect_and_sum(std::slice::from_ref(image));
        assert_eq!(out.omitted, 0);
        assert_eq!(out.image.len(), image.len());
        for (addr, rec) in image.iter() {
            assert_eq!(out.image.get(addr), Some(rec));
        }
    });
}
