//! Profile vectors for the paper's Section 4 similarity analysis.
//!
//! Running a program `n` times with different inputs yields a set of vectors
//! `V = {V1 … Vn}` whose coordinate `l` is the prediction accuracy of static
//! instruction `l` (and a parallel set `S` of stride efficiency ratios).
//! Only instructions present in **all** runs contribute coordinates.

use vp_isa::InstrAddr;

use crate::merge::common_addrs;
use crate::ProfileImage;

/// The aligned per-run profile vectors of one workload.
///
/// Coordinates are percentages in `[0, 100]`, matching the paper's
/// histogram axes.
///
/// The accuracy vectors `V` cover every instruction executed at least
/// `min_execs` times in all runs. The stride-efficiency vectors `S`
/// additionally require `min_execs` *correct* stride predictions in all
/// runs: the ratio is a quotient of correct-prediction counts, so an
/// instruction with a handful of corrects has a ratio that is sampling
/// noise rather than behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedVectors {
    addrs: Vec<InstrAddr>,
    s_addrs: Vec<InstrAddr>,
    accuracy: Vec<Vec<f64>>,
    stride_ratio: Vec<Vec<f64>>,
}

impl AlignedVectors {
    /// Builds aligned vectors from `n` run images.
    ///
    /// Instructions executed fewer than `min_execs` times *in any run* are
    /// excluded — a rarely-executed instruction's "accuracy" is sampling
    /// noise, not program behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    #[must_use]
    pub fn from_images(images: &[ProfileImage], min_execs: u64) -> Self {
        assert!(!images.is_empty(), "need at least one profile image");
        let addrs: Vec<InstrAddr> = common_addrs(images)
            .into_iter()
            .filter(|&a| {
                images
                    .iter()
                    .all(|img| img.get(a).expect("common").execs >= min_execs)
            })
            .collect();
        let s_addrs: Vec<InstrAddr> = addrs
            .iter()
            .copied()
            .filter(|&a| {
                images
                    .iter()
                    .all(|img| img.get(a).expect("common").stride_correct >= min_execs)
            })
            .collect();
        let accuracy = images
            .iter()
            .map(|img| {
                addrs
                    .iter()
                    .map(|&a| 100.0 * img.get(a).expect("common").stride_accuracy())
                    .collect()
            })
            .collect();
        let stride_ratio = images
            .iter()
            .map(|img| {
                s_addrs
                    .iter()
                    .map(|&a| 100.0 * img.get(a).expect("common").stride_efficiency_ratio())
                    .collect()
            })
            .collect();
        AlignedVectors {
            addrs,
            s_addrs,
            accuracy,
            stride_ratio,
        }
    }

    /// Number of runs `n`.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.accuracy.len()
    }

    /// Vector dimension `k` (common instructions).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.addrs.len()
    }

    /// The aligned instruction addresses.
    #[must_use]
    pub fn addrs(&self) -> &[InstrAddr] {
        &self.addrs
    }

    /// The accuracy vector set `V` — one vector per run, percentages.
    #[must_use]
    pub fn accuracy_vectors(&self) -> &[Vec<f64>] {
        &self.accuracy
    }

    /// The stride-efficiency vector set `S` — one vector per run,
    /// percentages, over [`AlignedVectors::s_addrs`].
    #[must_use]
    pub fn stride_ratio_vectors(&self) -> &[Vec<f64>] {
        &self.stride_ratio
    }

    /// The instruction addresses behind the `S` vectors (a subset of
    /// [`AlignedVectors::addrs`]).
    #[must_use]
    pub fn s_addrs(&self) -> &[InstrAddr] {
        &self.s_addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstrProfile, VpCategory};

    fn image(rows: &[(u32, u64, u64, u64)]) -> ProfileImage {
        let mut img = ProfileImage::new("t");
        for &(addr, execs, correct, nonzero) in rows {
            img.insert(
                InstrAddr::new(addr),
                InstrProfile {
                    category: VpCategory::IntAlu,
                    execs,
                    stride_correct: correct,
                    nonzero_stride_correct: nonzero,
                    last_value_correct: 0,
                },
            );
        }
        img
    }

    #[test]
    fn coordinates_align_across_runs() {
        let a = image(&[(1, 100, 90, 90), (2, 100, 10, 0)]);
        let b = image(&[(1, 200, 160, 160), (2, 50, 10, 5)]);
        let v = AlignedVectors::from_images(&[a, b], 1);
        assert_eq!(v.runs(), 2);
        assert_eq!(v.dim(), 2);
        assert_eq!(v.accuracy_vectors()[0], vec![90.0, 10.0]);
        assert_eq!(v.accuracy_vectors()[1], vec![80.0, 20.0]);
        assert_eq!(v.stride_ratio_vectors()[0][1], 0.0);
        assert_eq!(v.stride_ratio_vectors()[1][1], 50.0);
    }

    #[test]
    fn min_execs_filters_in_every_run() {
        let a = image(&[(1, 100, 90, 90), (2, 100, 10, 0)]);
        let b = image(&[(1, 3, 1, 1), (2, 50, 10, 5)]);
        let v = AlignedVectors::from_images(&[a, b], 10);
        // Instruction 1 has only 3 execs in run b: excluded.
        assert_eq!(v.dim(), 1);
        assert_eq!(v.addrs()[0], InstrAddr::new(2));
    }

    #[test]
    fn non_common_instructions_are_excluded() {
        let a = image(&[(1, 100, 90, 90), (3, 100, 10, 0)]);
        let b = image(&[(1, 100, 90, 90)]);
        let v = AlignedVectors::from_images(&[a, b], 1);
        assert_eq!(v.dim(), 1);
    }
}
