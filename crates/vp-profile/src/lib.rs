#![warn(missing_docs)]

//! # vp-profile — value-predictability profiling (the paper's phase 2)
//!
//! This crate implements the profile side of the methodology:
//!
//! 1. [`ProfileCollector`] is a `vp-sim` tracer that emulates **both** value
//!    predictors (last-value and stride) with an unbounded
//!    per-static-instruction table while the program runs on a training
//!    input — exactly the SHADE pass the paper describes — and produces a
//!    [`ProfileImage`];
//! 2. a [`ProfileImage`] maps each value-producing static instruction to its
//!    execution count, prediction accuracy (under either predictor) and
//!    *stride efficiency ratio* — the paper's three-column profile file,
//!    plus the raw counts needed to merge runs losslessly
//!    ([`format::to_text`] / [`format::from_text`]);
//! 3. [`merge::intersect_and_sum`] combines the images of `n` runs under
//!    different inputs, keeping only instructions that appear in every run
//!    (the paper's vector-alignment rule);
//! 4. [`vector::AlignedVectors`] extracts the paper's `V` (accuracy) and `S`
//!    (stride efficiency) vector sets for the Section 4 similarity metrics.
//!
//! ## Example
//!
//! ```
//! use vp_isa::asm::assemble;
//! use vp_sim::{run, RunLimits};
//! use vp_profile::ProfileCollector;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble("li r1, 0\nli r2, 50\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n")?;
//! let mut collector = ProfileCollector::new("demo");
//! run(&p, &mut collector, RunLimits::default())?;
//! let image = collector.into_image();
//! // The loop-index increment at address 2 is almost perfectly
//! // stride-predictable, as in the paper's Table 3.1 example.
//! let rec = image.get(vp_isa::InstrAddr::new(2)).unwrap();
//! assert!(rec.stride_accuracy() > 0.9);
//! assert!(rec.stride_efficiency_ratio() > 0.9);
//! # Ok(())
//! # }
//! ```

pub mod collector;
pub mod error;
pub mod format;
pub mod image;
pub mod merge;
pub mod record;
pub mod store;
pub mod vector;

pub use collector::ProfileCollector;
pub use error::ProfileError;
pub use image::ProfileImage;
pub use record::{InstrProfile, VpCategory};
pub use store::StoreValueCollector;
pub use vector::AlignedVectors;
