//! The profiling tracer: emulates both value predictors during a run.

use std::collections::HashMap;

use vp_isa::InstrAddr;
use vp_predictor::{LastValueEntry, PredEntry, StrideEntry};
use vp_sim::{Retirement, Tracer};

use crate::{ProfileImage, VpCategory};

#[derive(Debug, Clone)]
struct PerInstr {
    stride: StrideEntry,
    last_value: LastValueEntry,
}

/// A `vp-sim` [`Tracer`] that builds a [`ProfileImage`].
///
/// For every value-producing static instruction it maintains an unbounded
/// stride-predictor cell and an unbounded last-value cell (the paper's
/// phase-2 simulator "can emulate the operation of the value predictor and
/// measure for each instruction its prediction accuracy" — emulating both
/// costs nothing and yields Table 2.1 for free).
///
/// An optional *phase split* divides the image in two at a static address
/// boundary, reproducing the paper's FP-benchmark split into an
/// initialization phase and a computation phase.
#[derive(Debug, Clone)]
pub struct ProfileCollector {
    state: HashMap<InstrAddr, PerInstr>,
    image: ProfileImage,
    comp_image: Option<ProfileImage>,
    split: Option<InstrAddr>,
}

impl ProfileCollector {
    /// A collector producing a single image named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProfileCollector {
            state: HashMap::new(),
            image: ProfileImage::new(name),
            comp_image: None,
            split: None,
        }
    }

    /// A collector that splits records at `split`: instructions at addresses
    /// `< split` go to the *init* image, the rest to the *computation*
    /// image. Predictor state is shared across the phases (the hardware
    /// does not reset between them).
    #[must_use]
    pub fn with_phase_split(name: impl Into<String>, split: InstrAddr) -> Self {
        let name = name.into();
        ProfileCollector {
            state: HashMap::new(),
            comp_image: Some(ProfileImage::new(format!("{name}/comp"))),
            image: ProfileImage::new(format!("{name}/init")),
            split: Some(split),
        }
    }

    /// Finishes collection, returning the single image.
    ///
    /// # Panics
    ///
    /// Panics if the collector was built with a phase split — use
    /// [`ProfileCollector::into_phase_images`] instead.
    #[must_use]
    pub fn into_image(self) -> ProfileImage {
        assert!(
            self.comp_image.is_none(),
            "phase-split collector: use into_phase_images"
        );
        self.image
    }

    /// Finishes a phase-split collection, returning `(init, computation)`.
    ///
    /// # Panics
    ///
    /// Panics if the collector was not built with a phase split.
    #[must_use]
    pub fn into_phase_images(self) -> (ProfileImage, ProfileImage) {
        let comp = self.comp_image.expect("collector has no phase split");
        (self.image, comp)
    }

    fn image_for(&mut self, addr: InstrAddr) -> &mut ProfileImage {
        match (self.split, &mut self.comp_image) {
            (Some(split), Some(comp)) if addr >= split => comp,
            _ => &mut self.image,
        }
    }
}

impl Tracer for ProfileCollector {
    fn retire(&mut self, ev: &Retirement<'_>) {
        let Some((_, _, value)) = ev.dest else { return };
        let Some(category) = VpCategory::from_op_category(ev.instr.op.category()) else {
            return;
        };
        let addr = ev.addr;

        // Evaluate both predictors before training; the first occurrence
        // allocates and counts as an (unavoidably) incorrect prediction.
        let (stride_ok, nonzero, lv_ok) = match self.state.get_mut(&addr) {
            Some(per) => {
                let stride_ok = per.stride.predict() == value;
                let nonzero = per.stride.nonzero_stride();
                let lv_ok = per.last_value.predict() == value;
                per.stride.train(value);
                per.last_value.train(value);
                (stride_ok, nonzero, lv_ok)
            }
            None => {
                self.state.insert(
                    addr,
                    PerInstr {
                        stride: StrideEntry::allocate(value),
                        last_value: LastValueEntry::allocate(value),
                    },
                );
                (false, false, false)
            }
        };

        let rec = self.image_for(addr).entry(addr, category);
        rec.execs += 1;
        rec.stride_correct += u64::from(stride_ok);
        rec.nonzero_stride_correct += u64::from(stride_ok && nonzero);
        rec.last_value_correct += u64::from(lv_ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_sim::{run, RunLimits};

    fn profile(src: &str) -> ProfileImage {
        let p = assemble(src).unwrap();
        let mut c = ProfileCollector::new("test");
        run(&p, &mut c, RunLimits::default()).unwrap();
        c.into_image()
    }

    #[test]
    fn loop_index_is_stride_predictable() {
        // The paper's Table 3.1 situation: index increments predict ~100%
        // by stride, ~0% by last-value.
        let img = profile("li r1, 0\nli r2, 200\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n");
        let rec = img.get(InstrAddr::new(2)).unwrap();
        assert_eq!(rec.execs, 200);
        // Misses only the allocation and the stride warm-up.
        assert_eq!(rec.stride_correct, 198);
        assert_eq!(rec.nonzero_stride_correct, 198);
        assert_eq!(rec.last_value_correct, 0);
    }

    #[test]
    fn constant_reload_is_last_value_predictable() {
        let img = profile(
            ".data 77\nli r1, 0\nli r2, 100\ntop: ld r3, (r0)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n",
        );
        let rec = img.get(InstrAddr::new(2)).unwrap();
        assert_eq!(rec.execs, 100);
        assert_eq!(rec.last_value_correct, 99);
        assert_eq!(rec.stride_correct, 99); // zero stride also repeats
        assert_eq!(rec.nonzero_stride_correct, 0); // ... with no stride use
        assert!(rec.stride_efficiency_ratio() < 0.01);
    }

    #[test]
    fn non_producers_are_not_recorded() {
        let img = profile("li r1, 1\nsd r1, (r0)\nbeq r0, r0, next\nnext: halt\n");
        assert!(
            img.get(InstrAddr::new(1)).is_none(),
            "store must not be profiled"
        );
        assert!(
            img.get(InstrAddr::new(2)).is_none(),
            "branch must not be profiled"
        );
        assert_eq!(img.len(), 1);
    }

    #[test]
    fn categories_split_int_and_fp() {
        let img = profile(
            ".f64 1.0\nli r1, 0\nli r2, 50\ntop: fld f1, (r0)\nfadd f2, f1, f1\nld r3, (r0)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n",
        );
        use crate::VpCategory::*;
        assert!(img.category_last_value_accuracy(FpLoad) > 0.9);
        assert!(img.category_last_value_accuracy(FpAlu) > 0.9);
        assert!(img.category_last_value_accuracy(IntLoad) > 0.9);
        // Loop index makes int-alu stride-friendly and lv-hostile.
        assert!(img.category_stride_accuracy(IntAlu) > 0.9);
        assert!(img.category_last_value_accuracy(IntAlu) < 0.1);
    }

    #[test]
    fn phase_split_partitions_by_address() {
        let src = "li r1, 0\nli r2, 30\ninit: addi r1, r1, 1\nbne r1, r2, init\nli r3, 0\ncomp: addi r3, r3, 2\nbne r3, r2, comp\nhalt\n";
        let p = assemble(src).unwrap();
        let mut c = ProfileCollector::with_phase_split("t", InstrAddr::new(4));
        run(&p, &mut c, RunLimits::default()).unwrap();
        let (init, comp) = c.into_phase_images();
        assert!(init.get(InstrAddr::new(2)).is_some());
        assert!(init.get(InstrAddr::new(5)).is_none());
        assert!(comp.get(InstrAddr::new(5)).is_some());
        assert!(comp.get(InstrAddr::new(2)).is_none());
        assert!(init.name().ends_with("/init"));
        assert!(comp.name().ends_with("/comp"));
    }

    #[test]
    #[should_panic(expected = "phase-split")]
    fn into_image_rejects_split_collector() {
        let c = ProfileCollector::with_phase_split("t", InstrAddr::new(0));
        let _ = c.into_image();
    }
}
