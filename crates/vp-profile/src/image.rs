//! The profile image: the output artifact of phase 2.

use std::collections::BTreeMap;

use vp_isa::InstrAddr;

use crate::{InstrProfile, VpCategory};

/// A profile image: one [`InstrProfile`] per value-producing static
/// instruction observed during a training run (or merged over several).
///
/// The paper's profile file is "organized as a table; each entry is
/// associated with an individual instruction and consists of three fields:
/// the instruction's address, its prediction accuracy and its stride
/// efficiency ratio" — this type is that table, with raw counts retained so
/// runs can be merged exactly and with last-value accuracy kept alongside
/// for the Table 2.1 comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileImage {
    name: String,
    records: BTreeMap<InstrAddr, InstrProfile>,
}

impl ProfileImage {
    /// An empty image labelled `name` (typically `workload/input`).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProfileImage {
            name: name.into(),
            records: BTreeMap::new(),
        }
    }

    /// The image's label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the image (merged images get compound names).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The record for `addr`, if that instruction was observed.
    #[must_use]
    pub fn get(&self, addr: InstrAddr) -> Option<&InstrProfile> {
        self.records.get(&addr)
    }

    /// Mutable access, inserting a fresh record if absent.
    pub fn entry(&mut self, addr: InstrAddr, category: VpCategory) -> &mut InstrProfile {
        self.records
            .entry(addr)
            .or_insert_with(|| InstrProfile::new(category))
    }

    /// Inserts or replaces a record (used by the file parser).
    pub fn insert(&mut self, addr: InstrAddr, record: InstrProfile) {
        self.records.insert(addr, record);
    }

    /// Number of profiled static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the image is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates records in address order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrAddr, &InstrProfile)> {
        self.records.iter().map(|(&a, r)| (a, r))
    }

    /// The set of profiled addresses, in order.
    pub fn addrs(&self) -> impl Iterator<Item = InstrAddr> + '_ {
        self.records.keys().copied()
    }

    /// Total dynamic executions across all records.
    #[must_use]
    pub fn total_execs(&self) -> u64 {
        self.records.values().map(|r| r.execs).sum()
    }

    /// Drops records with fewer than `min_execs` executions.
    ///
    /// Profiles of rarely executed instructions carry little signal; the
    /// Section 4 vectors use a small floor so one-shot instructions do not
    /// read as "0% or 100% accurate" noise.
    pub fn retain_min_execs(&mut self, min_execs: u64) {
        self.records.retain(|_, r| r.execs >= min_execs);
    }

    /// Aggregates the records of one [`VpCategory`]: returns
    /// `(execs, stride_correct, last_value_correct)` totals.
    #[must_use]
    pub fn category_totals(&self, category: VpCategory) -> (u64, u64, u64) {
        self.records
            .values()
            .filter(|r| r.category == category)
            .fold((0, 0, 0), |(e, s, l), r| {
                (e + r.execs, s + r.stride_correct, l + r.last_value_correct)
            })
    }

    /// Dynamic stride-predictor accuracy for one category, in `[0, 1]`
    /// (Table 2.1, "S" columns).
    #[must_use]
    pub fn category_stride_accuracy(&self, category: VpCategory) -> f64 {
        let (e, s, _) = self.category_totals(category);
        if e == 0 {
            0.0
        } else {
            s as f64 / e as f64
        }
    }

    /// Dynamic last-value-predictor accuracy for one category, in `[0, 1]`
    /// (Table 2.1, "L" columns).
    #[must_use]
    pub fn category_last_value_accuracy(&self, category: VpCategory) -> f64 {
        let (e, _, l) = self.category_totals(category);
        if e == 0 {
            0.0
        } else {
            l as f64 / e as f64
        }
    }

    /// Dynamic (execution-weighted) stride efficiency ratio over the whole
    /// image, in `[0, 1]` — the §2.5 aggregate.
    #[must_use]
    pub fn dynamic_stride_efficiency_ratio(&self) -> f64 {
        let (nz, c) = self.records.values().fold((0u64, 0u64), |(nz, c), r| {
            (nz + r.nonzero_stride_correct, c + r.stride_correct)
        });
        if c == 0 {
            0.0
        } else {
            nz as f64 / c as f64
        }
    }
}

impl<'a> IntoIterator for &'a ProfileImage {
    type Item = (InstrAddr, &'a InstrProfile);
    type IntoIter = Box<dyn Iterator<Item = (InstrAddr, &'a InstrProfile)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.records.iter().map(|(&a, r)| (a, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cat: VpCategory, execs: u64, stride: u64, lv: u64) -> InstrProfile {
        InstrProfile {
            category: cat,
            execs,
            stride_correct: stride,
            nonzero_stride_correct: stride / 2,
            last_value_correct: lv,
        }
    }

    #[test]
    fn entry_creates_then_reuses() {
        let mut img = ProfileImage::new("t");
        img.entry(InstrAddr::new(1), VpCategory::IntAlu).execs += 1;
        img.entry(InstrAddr::new(1), VpCategory::IntAlu).execs += 1;
        assert_eq!(img.len(), 1);
        assert_eq!(img.get(InstrAddr::new(1)).unwrap().execs, 2);
    }

    #[test]
    fn category_accuracy_is_execution_weighted() {
        let mut img = ProfileImage::new("t");
        img.insert(InstrAddr::new(0), record(VpCategory::IntAlu, 90, 90, 0));
        img.insert(InstrAddr::new(1), record(VpCategory::IntAlu, 10, 0, 10));
        assert!((img.category_stride_accuracy(VpCategory::IntAlu) - 0.9).abs() < 1e-12);
        assert!((img.category_last_value_accuracy(VpCategory::IntAlu) - 0.1).abs() < 1e-12);
        // Empty category reads 0.
        assert_eq!(img.category_stride_accuracy(VpCategory::FpLoad), 0.0);
    }

    #[test]
    fn retain_min_execs_filters() {
        let mut img = ProfileImage::new("t");
        img.insert(InstrAddr::new(0), record(VpCategory::IntAlu, 100, 1, 1));
        img.insert(InstrAddr::new(1), record(VpCategory::IntAlu, 2, 1, 1));
        img.retain_min_execs(10);
        assert_eq!(img.len(), 1);
        assert!(img.get(InstrAddr::new(0)).is_some());
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut img = ProfileImage::new("t");
        for a in [5u32, 1, 3] {
            img.insert(InstrAddr::new(a), record(VpCategory::IntAlu, 1, 0, 0));
        }
        let order: Vec<u32> = img.addrs().map(|a| a.index()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn dynamic_stride_efficiency_aggregates() {
        let mut img = ProfileImage::new("t");
        img.insert(InstrAddr::new(0), record(VpCategory::IntAlu, 10, 8, 0)); // 4 nonzero
        img.insert(InstrAddr::new(1), record(VpCategory::IntAlu, 10, 4, 0)); // 2 nonzero
        assert!((img.dynamic_stride_efficiency_ratio() - 0.5).abs() < 1e-12);
    }
}
