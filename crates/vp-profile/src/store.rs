//! Store-value profiling: the §2.1 generalization.
//!
//! The paper notes the prediction schemes "could be generalized and applied
//! to memory storage operands, special registers, the program counter and
//! condition codes". This collector measures the first of those: for each
//! static store instruction, the predictability of the *values it writes to
//! memory* under the same unbounded last-value and stride predictors used
//! for destination registers.

use std::collections::HashMap;

use vp_isa::InstrAddr;
use vp_predictor::{LastValueEntry, PredEntry, StrideEntry};
use vp_sim::{Retirement, Tracer};

use crate::{ProfileImage, VpCategory};

#[derive(Debug, Clone)]
struct PerStore {
    stride: StrideEntry,
    last_value: LastValueEntry,
}

/// A tracer profiling the values written by store instructions.
///
/// Produces a [`ProfileImage`] whose records carry
/// [`VpCategory::Store`]; the same accuracy/efficiency accessors apply.
///
/// # Examples
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::{run, RunLimits};
/// use vp_profile::StoreValueCollector;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The stored value strides by 2 every iteration.
/// let p = assemble(
///     "li r1, 0\nli r2, 100\ntop: slli r3, r1, 1\nsd r3, 50(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n",
/// )?;
/// let mut c = StoreValueCollector::new("demo");
/// run(&p, &mut c, RunLimits::default())?;
/// let image = c.into_image();
/// let rec = image.get(vp_isa::InstrAddr::new(3)).unwrap();
/// assert!(rec.stride_accuracy() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StoreValueCollector {
    state: HashMap<InstrAddr, PerStore>,
    image: ProfileImage,
}

impl StoreValueCollector {
    /// An empty collector labelled `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StoreValueCollector {
            state: HashMap::new(),
            image: ProfileImage::new(name),
        }
    }

    /// Finishes collection, returning the store-value profile image.
    #[must_use]
    pub fn into_image(self) -> ProfileImage {
        self.image
    }
}

impl Tracer for StoreValueCollector {
    fn retire(&mut self, ev: &Retirement<'_>) {
        let Some(value) = ev.stored else { return };
        let addr = ev.addr;
        let (stride_ok, nonzero, lv_ok) = match self.state.get_mut(&addr) {
            Some(per) => {
                let stride_ok = per.stride.predict() == value;
                let nonzero = per.stride.nonzero_stride();
                let lv_ok = per.last_value.predict() == value;
                per.stride.train(value);
                per.last_value.train(value);
                (stride_ok, nonzero, lv_ok)
            }
            None => {
                self.state.insert(
                    addr,
                    PerStore {
                        stride: StrideEntry::allocate(value),
                        last_value: LastValueEntry::allocate(value),
                    },
                );
                (false, false, false)
            }
        };
        let rec = self.image.entry(addr, VpCategory::Store);
        rec.execs += 1;
        rec.stride_correct += u64::from(stride_ok);
        rec.nonzero_stride_correct += u64::from(stride_ok && nonzero);
        rec.last_value_correct += u64::from(lv_ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_sim::{run, RunLimits};

    fn profile(src: &str) -> ProfileImage {
        let p = assemble(src).unwrap();
        let mut c = StoreValueCollector::new("t");
        run(&p, &mut c, RunLimits::default()).unwrap();
        c.into_image()
    }

    #[test]
    fn constant_stores_are_last_value_predictable() {
        let img = profile("li r1, 0\nli r2, 50\nli r3, 7\ntop: sd r3, 10(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n");
        let rec = img.get(vp_isa::InstrAddr::new(3)).unwrap();
        assert_eq!(rec.execs, 50);
        assert_eq!(rec.last_value_correct, 49);
        assert_eq!(rec.category, VpCategory::Store);
    }

    #[test]
    fn loads_and_alu_are_not_collected() {
        let img = profile("li r1, 5\nld r2, (r0)\nadd r3, r1, r2\nsd r3, (r0)\nhalt\n");
        assert_eq!(img.len(), 1, "only the store is profiled");
        assert!(img.get(vp_isa::InstrAddr::new(3)).is_some());
    }

    #[test]
    fn fp_stores_are_profiled_too() {
        let img = profile(".f64 2.5\nli r1, 0\nli r2, 30\nfld f1, (r0)\ntop: fsd f1, 10(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n");
        let rec = img.get(vp_isa::InstrAddr::new(3)).unwrap();
        assert_eq!(rec.execs, 30);
        // Same bits stored every time: perfect last-value locality.
        assert_eq!(rec.last_value_correct, 29);
    }

    #[test]
    fn store_category_survives_the_file_format() {
        let img = profile("li r1, 1\nsd r1, (r0)\nsd r1, 1(r0)\nhalt\n");
        let text = crate::format::to_text(&img);
        assert!(text.contains(" store"));
        let back = crate::format::from_text(&text).unwrap();
        assert_eq!(back, img);
    }
}
