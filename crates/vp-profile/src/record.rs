//! Per-static-instruction profile records.

use std::fmt;

use vp_isa::OpCategory;

/// Value-prediction category of a producing instruction, mirroring the
/// paper's Table 2.1 breakdown.
///
/// Jump-and-link instructions write a (trivially predictable) link value and
/// are bucketed with integer ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VpCategory {
    /// Integer computation.
    IntAlu,
    /// Integer loads.
    IntLoad,
    /// Floating-point computation.
    FpAlu,
    /// Floating-point loads.
    FpLoad,
    /// Stored values (the §2.1 generalization to memory storage operands;
    /// collected by `StoreValueCollector`, not part of the Table 2.1
    /// destination-register categories).
    Store,
}

impl VpCategory {
    /// The Table 2.1 destination-register categories, in its order
    /// (excludes [`VpCategory::Store`]).
    pub const ALL: [VpCategory; 4] = [
        VpCategory::IntAlu,
        VpCategory::IntLoad,
        VpCategory::FpAlu,
        VpCategory::FpLoad,
    ];

    /// Classifies a producing instruction's opcode category.
    ///
    /// Returns `None` for categories that never produce values (stores,
    /// branches, system).
    #[must_use]
    pub fn from_op_category(cat: OpCategory) -> Option<Self> {
        match cat {
            OpCategory::IntAlu | OpCategory::Jump => Some(VpCategory::IntAlu),
            OpCategory::IntLoad => Some(VpCategory::IntLoad),
            OpCategory::FpAlu => Some(VpCategory::FpAlu),
            OpCategory::FpLoad => Some(VpCategory::FpLoad),
            OpCategory::Store | OpCategory::Branch | OpCategory::System => None,
        }
    }

    /// Stable text name (used by the profile file format).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            VpCategory::IntAlu => "int-alu",
            VpCategory::IntLoad => "int-load",
            VpCategory::FpAlu => "fp-alu",
            VpCategory::FpLoad => "fp-load",
            VpCategory::Store => "store",
        }
    }

    /// Parses the text name.
    #[must_use]
    pub fn from_str_name(s: &str) -> Option<Self> {
        VpCategory::ALL
            .into_iter()
            .chain([VpCategory::Store])
            .find(|c| c.as_str() == s)
    }
}

impl fmt::Display for VpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Accumulated prediction behaviour of one static instruction.
///
/// Counts are raw so records from different runs can be merged exactly;
/// the paper's two profile columns are the derived
/// [`InstrProfile::stride_accuracy`] and
/// [`InstrProfile::stride_efficiency_ratio`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrProfile {
    /// Category of the instruction.
    pub category: VpCategory,
    /// Dynamic executions observed.
    pub execs: u64,
    /// Executions correctly predicted by the (unbounded) stride predictor.
    pub stride_correct: u64,
    /// Stride-correct executions whose stride was non-zero.
    pub nonzero_stride_correct: u64,
    /// Executions correctly predicted by the (unbounded) last-value
    /// predictor.
    pub last_value_correct: u64,
}

impl InstrProfile {
    /// A fresh record (one execution observed, nothing predicted yet).
    #[must_use]
    pub fn new(category: VpCategory) -> Self {
        InstrProfile {
            category,
            execs: 0,
            stride_correct: 0,
            nonzero_stride_correct: 0,
            last_value_correct: 0,
        }
    }

    /// Prediction accuracy under the stride predictor, in `[0, 1]`.
    ///
    /// This is the column the paper's classification threshold is compared
    /// against.
    #[must_use]
    pub fn stride_accuracy(&self) -> f64 {
        ratio(self.stride_correct, self.execs)
    }

    /// Prediction accuracy under the last-value predictor, in `[0, 1]`.
    #[must_use]
    pub fn last_value_accuracy(&self) -> f64 {
        ratio(self.last_value_correct, self.execs)
    }

    /// The paper's stride efficiency ratio: successful non-zero-stride
    /// predictions over all successful stride predictions, in `[0, 1]`.
    #[must_use]
    pub fn stride_efficiency_ratio(&self) -> f64 {
        ratio(self.nonzero_stride_correct, self.stride_correct)
    }

    /// The accuracy the profile promises under `directive`: the stride
    /// column for `stride`, the last-value column for `last-value`, and —
    /// for untagged instructions, where the annotation pass declined both
    /// schemes — the better of the two columns (the accuracy the best
    /// single-scheme predictor *would* have achieved). Used by the
    /// attribution layer to compute per-PC profile drift against observed
    /// replay accuracy.
    #[must_use]
    pub fn profiled_accuracy(&self, directive: vp_isa::Directive) -> f64 {
        match directive {
            vp_isa::Directive::Stride => self.stride_accuracy(),
            vp_isa::Directive::LastValue => self.last_value_accuracy(),
            vp_isa::Directive::None => self.stride_accuracy().max(self.last_value_accuracy()),
        }
    }

    /// Merges another record for the same instruction (e.g. from a
    /// different training run).
    ///
    /// # Panics
    ///
    /// Panics if the categories disagree — addresses are static, so the
    /// category can never legitimately change between runs.
    pub fn merge(&mut self, other: &InstrProfile) {
        assert_eq!(
            self.category, other.category,
            "category mismatch in profile merge"
        );
        self.execs += other.execs;
        self.stride_correct += other.stride_correct;
        self.nonzero_stride_correct += other.nonzero_stride_correct;
        self.last_value_correct += other.last_value_correct;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_round_trips_through_names() {
        for c in VpCategory::ALL {
            assert_eq!(VpCategory::from_str_name(c.as_str()), Some(c));
        }
        assert_eq!(VpCategory::from_str_name("bogus"), None);
    }

    #[test]
    fn jump_buckets_as_int_alu() {
        assert_eq!(
            VpCategory::from_op_category(OpCategory::Jump),
            Some(VpCategory::IntAlu)
        );
        assert_eq!(VpCategory::from_op_category(OpCategory::Store), None);
    }

    #[test]
    fn derived_ratios() {
        let p = InstrProfile {
            category: VpCategory::IntAlu,
            execs: 100,
            stride_correct: 80,
            nonzero_stride_correct: 60,
            last_value_correct: 20,
        };
        assert!((p.stride_accuracy() - 0.8).abs() < 1e-12);
        assert!((p.last_value_accuracy() - 0.2).abs() < 1e-12);
        assert!((p.stride_efficiency_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn profiled_accuracy_follows_the_directive() {
        use vp_isa::Directive;
        let p = InstrProfile {
            category: VpCategory::IntAlu,
            execs: 100,
            stride_correct: 80,
            nonzero_stride_correct: 60,
            last_value_correct: 20,
        };
        assert!((p.profiled_accuracy(Directive::Stride) - 0.8).abs() < 1e-12);
        assert!((p.profiled_accuracy(Directive::LastValue) - 0.2).abs() < 1e-12);
        // Untagged: the better single-scheme column.
        assert!((p.profiled_accuracy(Directive::None) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_record_has_zero_ratios() {
        let p = InstrProfile::new(VpCategory::FpLoad);
        assert_eq!(p.stride_accuracy(), 0.0);
        assert_eq!(p.stride_efficiency_ratio(), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = InstrProfile {
            category: VpCategory::IntAlu,
            execs: 10,
            stride_correct: 5,
            nonzero_stride_correct: 2,
            last_value_correct: 3,
        };
        let b = InstrProfile {
            execs: 20,
            stride_correct: 15,
            ..a
        };
        a.merge(&b);
        assert_eq!(a.execs, 30);
        assert_eq!(a.stride_correct, 20);
        assert_eq!(a.nonzero_stride_correct, 4);
    }

    #[test]
    #[should_panic(expected = "category mismatch")]
    fn merge_rejects_category_change() {
        let mut a = InstrProfile::new(VpCategory::IntAlu);
        a.merge(&InstrProfile::new(VpCategory::FpAlu));
    }
}
