//! Text serialisation of profile images.
//!
//! The format is the paper's three-column profile file extended with raw
//! counts (so merges are exact) and a category column:
//!
//! ```text
//! # provp-profile v1
//! # name: ijpeg/train0
//! # addr execs stride_correct nonzero_stride_correct lv_correct category
//! 3 1000 999 999 0 int-alu
//! 7 1000 120 3 118 int-load
//! ```
//!
//! Derived columns (accuracy, stride efficiency ratio) are intentionally
//! not stored — they are recomputed, so a file can never disagree with
//! itself.

use vp_isa::InstrAddr;

use crate::{InstrProfile, ProfileError, ProfileImage, VpCategory};

const MAGIC: &str = "# provp-profile v1";

/// Serialises an image to the text format.
#[must_use]
pub fn to_text(image: &ProfileImage) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("# name: {}\n", image.name()));
    out.push_str("# addr execs stride_correct nonzero_stride_correct lv_correct category\n");
    for (addr, r) in image.iter() {
        out.push_str(&format!(
            "{} {} {} {} {} {}\n",
            addr.index(),
            r.execs,
            r.stride_correct,
            r.nonzero_stride_correct,
            r.last_value_correct,
            r.category
        ));
    }
    out
}

/// Parses the text format back into an image.
///
/// # Errors
///
/// - [`ProfileError::BadHeader`] if the magic line is missing;
/// - [`ProfileError::Parse`] for malformed lines;
/// - [`ProfileError::Inconsistent`] if a record claims more correct
///   predictions than executions (or more non-zero-stride corrects than
///   stride corrects).
pub fn from_text(text: &str) -> Result<ProfileImage, ProfileError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == MAGIC => {}
        _ => return Err(ProfileError::BadHeader),
    }
    let mut image = ProfileImage::new("unnamed");
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(name) = rest.trim().strip_prefix("name:") {
                image.set_name(name.trim());
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut next_u64 = |what: &str| -> Result<u64, ProfileError> {
            parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ProfileError::Parse {
                    line: lineno,
                    message: format!("bad {what}"),
                })
        };
        let addr = next_u64("addr")?;
        let execs = next_u64("execs")?;
        let stride_correct = next_u64("stride_correct")?;
        let nonzero_stride_correct = next_u64("nonzero_stride_correct")?;
        let last_value_correct = next_u64("lv_correct")?;
        let cat_tok = parts.next().ok_or_else(|| ProfileError::Parse {
            line: lineno,
            message: "missing category".into(),
        })?;
        let category = VpCategory::from_str_name(cat_tok).ok_or_else(|| ProfileError::Parse {
            line: lineno,
            message: format!("unknown category `{cat_tok}`"),
        })?;
        if parts.next().is_some() {
            return Err(ProfileError::Parse {
                line: lineno,
                message: "trailing fields".into(),
            });
        }
        if stride_correct > execs || last_value_correct > execs {
            return Err(ProfileError::Inconsistent {
                line: lineno,
                message: "more correct predictions than executions".into(),
            });
        }
        if nonzero_stride_correct > stride_correct {
            return Err(ProfileError::Inconsistent {
                line: lineno,
                message: "more non-zero-stride corrects than stride corrects".into(),
            });
        }
        let addr = u32::try_from(addr).map_err(|_| ProfileError::Parse {
            line: lineno,
            message: "address exceeds 32 bits".into(),
        })?;
        image.insert(
            InstrAddr::new(addr),
            InstrProfile {
                category,
                execs,
                stride_correct,
                nonzero_stride_correct,
                last_value_correct,
            },
        );
    }
    Ok(image)
}

/// Renders the paper's own three-column view (Table 3.1) of an image:
/// address, prediction accuracy, stride efficiency ratio.
#[must_use]
pub fn to_paper_table(image: &ProfileImage) -> String {
    let mut out = String::from("addr  accuracy  stride-efficiency\n");
    for (addr, r) in image.iter() {
        out.push_str(&format!(
            "{:<5} {:>7.2}%  {:>7.2}%\n",
            addr.index(),
            100.0 * r.stride_accuracy(),
            100.0 * r.stride_efficiency_ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileImage {
        let mut img = ProfileImage::new("demo");
        img.insert(
            InstrAddr::new(3),
            InstrProfile {
                category: VpCategory::IntAlu,
                execs: 100,
                stride_correct: 99,
                nonzero_stride_correct: 99,
                last_value_correct: 0,
            },
        );
        img.insert(
            InstrAddr::new(7),
            InstrProfile {
                category: VpCategory::FpLoad,
                execs: 50,
                stride_correct: 40,
                nonzero_stride_correct: 2,
                last_value_correct: 39,
            },
        );
        img
    }

    #[test]
    fn round_trip_preserves_everything() {
        let img = sample();
        let parsed = from_text(&to_text(&img)).unwrap();
        assert_eq!(parsed, img);
        assert_eq!(parsed.name(), "demo");
    }

    #[test]
    fn missing_header_is_rejected() {
        assert_eq!(
            from_text("3 1 1 1 1 int-alu\n"),
            Err(ProfileError::BadHeader)
        );
        assert_eq!(from_text(""), Err(ProfileError::BadHeader));
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let text = format!("{MAGIC}\n3 1 1 1 1 int-alu\nbogus line here x y\n");
        match from_text(&text) {
            Err(ProfileError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inconsistent_counts_are_rejected() {
        let text = format!("{MAGIC}\n3 10 11 0 0 int-alu\n");
        assert!(matches!(
            from_text(&text),
            Err(ProfileError::Inconsistent { .. })
        ));
        let text = format!("{MAGIC}\n3 10 5 6 0 int-alu\n");
        assert!(matches!(
            from_text(&text),
            Err(ProfileError::Inconsistent { .. })
        ));
    }

    #[test]
    fn unknown_category_is_rejected() {
        let text = format!("{MAGIC}\n3 10 5 2 1 warp-core\n");
        assert!(matches!(from_text(&text), Err(ProfileError::Parse { .. })));
    }

    #[test]
    fn paper_table_shows_percentages() {
        let table = to_paper_table(&sample());
        assert!(table.contains("99.00%"));
        assert!(table.contains("80.00%"));
    }
}
