//! Combining the profile images of multiple training runs.

use std::collections::BTreeSet;

use vp_isa::InstrAddr;

use crate::ProfileImage;

/// Result of merging several run images.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged image (counts summed over the common instructions).
    pub image: ProfileImage,
    /// Instructions dropped because they did not appear in every run.
    pub omitted: usize,
}

/// Merges run images by **intersection**: only instructions that appear in
/// every run are kept (their raw counts are summed), matching the paper's
/// rule that "we only consider the instructions that appear in all the
/// different runs of the program; instructions which only appear in certain
/// runs are omitted".
///
/// # Panics
///
/// Panics if `images` is empty.
#[must_use]
pub fn intersect_and_sum(images: &[ProfileImage]) -> MergeOutcome {
    assert!(!images.is_empty(), "cannot merge zero profile images");
    let common = common_addrs(images);
    let union: BTreeSet<InstrAddr> = images.iter().flat_map(|img| img.addrs()).collect();
    let omitted = union.len() - common.len();

    let mut merged = ProfileImage::new(format!("merge({})", images.len()));
    for &addr in &common {
        let mut acc = *images[0].get(addr).expect("addr common to all images");
        for img in &images[1..] {
            acc.merge(img.get(addr).expect("addr common to all images"));
        }
        merged.insert(addr, acc);
    }
    MergeOutcome {
        image: merged,
        omitted,
    }
}

/// The set of instruction addresses present in every image, in order.
#[must_use]
pub fn common_addrs(images: &[ProfileImage]) -> Vec<InstrAddr> {
    match images.split_first() {
        None => Vec::new(),
        Some((first, rest)) => first
            .addrs()
            .filter(|&a| rest.iter().all(|img| img.get(a).is_some()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstrProfile, VpCategory};

    fn image(name: &str, rows: &[(u32, u64, u64)]) -> ProfileImage {
        let mut img = ProfileImage::new(name);
        for &(addr, execs, correct) in rows {
            img.insert(
                InstrAddr::new(addr),
                InstrProfile {
                    category: VpCategory::IntAlu,
                    execs,
                    stride_correct: correct,
                    nonzero_stride_correct: correct,
                    last_value_correct: 0,
                },
            );
        }
        img
    }

    #[test]
    fn intersection_drops_run_specific_instructions() {
        let a = image("a", &[(1, 10, 5), (2, 10, 9), (3, 4, 0)]);
        let b = image("b", &[(1, 20, 10), (2, 30, 27)]);
        let out = intersect_and_sum(&[a, b]);
        assert_eq!(out.image.len(), 2);
        assert_eq!(out.omitted, 1);
        let r1 = out.image.get(InstrAddr::new(1)).unwrap();
        assert_eq!(r1.execs, 30);
        assert_eq!(r1.stride_correct, 15);
        assert!((r1.stride_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_image_merges_to_itself() {
        let a = image("a", &[(1, 10, 5)]);
        let out = intersect_and_sum(std::slice::from_ref(&a));
        assert_eq!(out.omitted, 0);
        assert_eq!(out.image.get(InstrAddr::new(1)), a.get(InstrAddr::new(1)));
    }

    #[test]
    fn common_addrs_ordering() {
        let a = image("a", &[(5, 1, 0), (1, 1, 0), (9, 1, 0)]);
        let b = image("b", &[(9, 1, 0), (5, 1, 0)]);
        let addrs: Vec<u32> = common_addrs(&[a, b]).iter().map(|a| a.index()).collect();
        assert_eq!(addrs, vec![5, 9]);
        assert!(common_addrs(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero profile images")]
    fn merging_nothing_panics() {
        let _ = intersect_and_sum(&[]);
    }
}
