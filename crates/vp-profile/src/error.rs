//! Profile file-format errors.

use std::error::Error;
use std::fmt;

/// Errors from parsing a profile image file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A malformed line in the profile text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
    /// The header magic was missing or wrong.
    BadHeader,
    /// A record's counts are inconsistent (e.g. more correct predictions
    /// than executions).
    Inconsistent {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Parse { line, message } => {
                write!(f, "profile parse error on line {line}: {message}")
            }
            ProfileError::BadHeader => write!(f, "missing or unrecognised profile header"),
            ProfileError::Inconsistent { line, message } => {
                write!(f, "inconsistent profile record on line {line}: {message}")
            }
        }
    }
}

impl Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = ProfileError::Parse {
            line: 4,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }
}
