#![warn(missing_docs)]

//! # provp — profile-guided value prediction
//!
//! Umbrella crate re-exporting the whole `provp` workspace: a reproduction of
//! Gabbay & Mendelson, *"Can Program Profiling Support Value Prediction?"*
//! (MICRO-30, 1997).
//!
//! The individual subsystems live in their own crates; this crate exists so
//! examples and downstream users can depend on one name:
//!
//! - [`isa`] — the RISC instruction set with value-prediction directive bits.
//! - [`sim`] — the functional (SHADE-equivalent) tracing simulator.
//! - [`predictor`] — last-value / stride / hybrid predictors and the
//!   saturating-counter hardware classifier.
//! - [`profile`] — profile-image collection and multi-run similarity vectors.
//! - [`compiler`] — the phase-3 directive annotation pass.
//! - [`ilp`] — the abstract 40-entry-window ILP machine.
//! - [`stats`] — the paper's distance metrics, histograms and table printers.
//! - [`workloads`] — the nine SPEC95-analogue synthetic workloads.
//! - [`core`] — end-to-end experiment pipelines for every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use provp::core::pipeline::{ProfileGuidedPipeline, PipelineConfig};
//! use provp::workloads::{Workload, WorkloadKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = Workload::new(WorkloadKind::Ijpeg);
//! let pipeline = ProfileGuidedPipeline::new(PipelineConfig::default());
//! let outcome = pipeline.run(&workload)?;
//! assert!(outcome.annotated.summary().tagged() > 0);
//! # Ok(())
//! # }
//! ```

pub use provp_core as core;
pub use vp_compiler as compiler;
pub use vp_ilp as ilp;
pub use vp_isa as isa;
pub use vp_obs as obs;
pub use vp_predictor as predictor;
pub use vp_profile as profile;
pub use vp_sim as sim;
pub use vp_stats as stats;
pub use vp_workloads as workloads;

/// One-line import for the experiment-facing API.
///
/// ```
/// use provp::prelude::*;
/// ```
///
/// pulls in everything a typical experiment touches: the [`Suite`]
/// front-end, the [`ReplayRequest`] replay builder (batch over a captured
/// [`Trace`] or bounded-memory streaming straight off the simulator),
/// predictor configuration, workload selection and the run-manifest
/// types. Deliberately excluded: the deprecated pre-`ReplayRequest`
/// replay functions (use the builder) and crate internals — reach
/// through the per-subsystem modules (`provp::sim`, `provp::predictor`,
/// ...) when you need those.
pub mod prelude {
    pub use provp_core::replay::stream::{DEFAULT_BLOCK_POOL, MIN_BLOCK_POOL};
    pub use provp_core::{
        PredictorTracer, ReplayCellOutcome, ReplayOutcome, ReplayRequest, ReplayResponse,
        ReplaySource, Suite, SweepPlan, TraceStore,
    };
    pub use vp_obs::{HotStack, PhaseShare, ProfileSection, RunManifest};
    pub use vp_predictor::{
        ClassifierKind, PredictorConfig, PredictorStats, TableGeometry, ValuePredictor,
    };
    pub use vp_sim::{run, RunLimits, Trace};
    pub use vp_workloads::{InputSet, Workload, WorkloadKind};
}
