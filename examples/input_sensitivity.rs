//! Reproduces the paper's Section 4 question interactively: do different
//! inputs change which instructions are value predictable?
//!
//! ```text
//! cargo run --release --example input_sensitivity [workload]
//! ```
//!
//! Profiles the chosen workload under five training inputs, aligns the
//! per-instruction accuracy vectors, and prints the M(V)max and M(V)average
//! coordinate histograms — plus the per-instruction worst disagreement.

use provp::prelude::*;
use provp::profile::AlignedVectors;
use provp::stats::metrics::{average_distance, max_distance};
use provp::stats::DecileHistogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|name| WorkloadKind::from_name(&name).ok_or(format!("unknown workload `{name}`")))
        .transpose()?
        .unwrap_or(WorkloadKind::Compress);

    let suite = Suite::new();
    let images = suite.train_images(kind);
    let vectors = AlignedVectors::from_images(&images, 10);
    println!(
        "{kind}: {} aligned static instructions across {} runs\n",
        vectors.dim(),
        vectors.runs()
    );

    let mmax = max_distance(vectors.accuracy_vectors());
    let mavg = average_distance(vectors.accuracy_vectors());

    println!("M(V)max coordinate spread:");
    print!("{}", DecileHistogram::from_values(&mmax));
    println!("\nM(V)average coordinate spread:");
    print!("{}", DecileHistogram::from_values(&mavg));

    let (worst_idx, worst) = mmax
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty vectors");
    println!(
        "\nleast input-stable instruction: {} (max accuracy disagreement {:.1} points)",
        vectors.addrs()[worst_idx],
        worst
    );
    let stable = mmax.iter().filter(|&&d| d <= 10.0).count();
    println!(
        "{stable}/{} instructions ({:.1}%) stay within 10 accuracy points across all inputs",
        mmax.len(),
        100.0 * stable as f64 / mmax.len() as f64
    );
    Ok(())
}
