//! Quickstart: the paper's three-phase methodology on one workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Phase 1 compiles the `ijpeg` analogue, phase 2 profiles it under five
//! training inputs on the tracing simulator, phase 3 re-emits the binary
//! with value-prediction directives — then we evaluate on a held-out
//! reference input and compare ILP with and without value prediction.

use provp::compiler::ThresholdPolicy;
use provp::core::pipeline::{PipelineConfig, ProfileGuidedPipeline};
use provp::ilp::{IlpAnalyzer, IlpConfig};
use provp::sim::{run, RunLimits};
use provp::workloads::{InputSet, Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::new(WorkloadKind::Ijpeg);

    // Phases 1-3: compile, profile (n = 5 training inputs), annotate.
    let pipeline = ProfileGuidedPipeline::new(PipelineConfig {
        policy: ThresholdPolicy::new(0.9),
        ..PipelineConfig::default()
    });
    let outcome = pipeline.run(&workload)?;
    println!(
        "profiled {} static value producers over {} runs",
        outcome.merged.len(),
        outcome.images.len()
    );
    println!("annotation report: {}", outcome.annotated.summary());

    // Evaluation: a *reference* input the profiler never saw, carrying the
    // training-derived directives.
    let tagged = outcome.annotated.program();
    let reference = workload
        .program(&InputSet::reference())
        .with_directives(|addr, _| tagged.text()[addr.index() as usize].directive);

    let mut base = IlpAnalyzer::new(IlpConfig::paper_no_vp());
    run(&reference, &mut base, RunLimits::default())?;
    let base = base.finish();

    let mut vp = IlpAnalyzer::new(IlpConfig::paper_vp_profile());
    run(&reference, &mut vp, RunLimits::default())?;
    let vp = vp.finish();

    println!("no value prediction:          {base}");
    println!("profile-guided value pred.:   {vp}");
    println!(
        "ILP increase:                 {:+.1}%",
        vp.ilp_increase_over(&base)
    );
    Ok(())
}
