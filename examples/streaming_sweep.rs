//! Bounded-memory replay: sweep a predictor matrix without ever holding
//! the trace in memory.
//!
//! ```text
//! cargo run --release --example streaming_sweep [workload]
//! ```
//!
//! The batch path captures the full retirement trace once and replays it
//! through the fused sweep kernel; the streaming path re-simulates the
//! program while 1024-event blocks flow through a fixed pool of buffers
//! into PC-sharded predictor workers, so peak memory no longer scales
//! with trace length. Both paths answer through the same
//! [`ReplayRequest`] builder and are bit-identical — this example runs
//! them side by side and asserts it.

use provp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|name| WorkloadKind::from_name(&name).ok_or(format!("unknown workload `{name}`")))
        .transpose()?
        .unwrap_or(WorkloadKind::Compress);
    // A phase-3 annotated binary, so the directive-routed configurations
    // in the sweep have tags to work with.
    let program = Suite::new().reference_program(kind, Some(0.7));
    let limits = RunLimits::default();

    // The sweep: both paper baselines plus a hybrid, sharing the
    // workload's own directive annotation.
    let mut plan = SweepPlan::new();
    let table = plan.add_directives(&program);
    for config in [
        PredictorConfig::spec_table_stride_fsm(),
        PredictorConfig::spec_table_stride_profile(),
        PredictorConfig::Hybrid {
            stride: TableGeometry::new(128, 2),
            last_value: TableGeometry::new(384, 2),
        },
    ] {
        plan.add_cell(config, table);
    }

    // Batch: capture the whole trace, then one fused pass over it.
    let trace = Trace::capture(&program, limits)?;
    println!(
        "{kind}: {} retired events resident in the batch trace",
        trace.len()
    );
    let batch = ReplayRequest::batch(&trace).plan(plan.clone()).run()?;

    // Streaming: no trace — the producer re-simulates into a bounded
    // pool of DEFAULT_BLOCK_POOL blocks while four shard workers consume.
    let streamed = ReplayRequest::stream(&program, limits)
        .plan(plan)
        .shards(4)
        .block_pool(DEFAULT_BLOCK_POOL)
        .run()?;

    for (cell, (s, b)) in streamed.outcomes().iter().zip(batch.outcomes()).enumerate() {
        assert_eq!(s.stats, b.stats, "cell {cell} diverged");
        println!("cell {cell}: {}", s.stats);
    }
    println!("streaming == batch on every cell");
    Ok(())
}
