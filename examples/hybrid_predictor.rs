//! The hybrid predictor the paper's conclusions propose: a small stride
//! table for `.st`-tagged instructions plus a larger last-value table for
//! `.lv`-tagged ones, routed by the opcode directive.
//!
//! ```text
//! cargo run --release --example hybrid_predictor [workload]
//! ```
//!
//! Compares three same-budget designs on a phase-3 annotated binary:
//! a 512-entry stride table (counters), a 512-entry stride table
//! (directives) and a 128-stride + 384-last-value hybrid — showing how the
//! split spends the stride fields only where they pay.

use provp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|name| WorkloadKind::from_name(&name).ok_or(format!("unknown workload `{name}`")))
        .transpose()?
        .unwrap_or(WorkloadKind::Li);

    let suite = Suite::new();
    let tagged = suite.reference_program(kind, Some(0.7));
    let (_, lv, st) = tagged.directive_counts();
    println!("workload: {kind} — {st} stride-tagged, {lv} last-value-tagged producers\n");

    let designs: [(&str, PredictorConfig); 3] = [
        (
            "stride 512x2 + counters",
            PredictorConfig::spec_table_stride_fsm(),
        ),
        (
            "stride 512x2 + directives",
            PredictorConfig::spec_table_stride_profile(),
        ),
        (
            "hybrid 128 stride + 384 lv",
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(128, 2),
                last_value: TableGeometry::new(384, 2),
            },
        ),
    ];

    for (name, config) in designs {
        let mut tracer = PredictorTracer::new(config.build());
        run(&tagged, &mut tracer, RunLimits::default())?;
        let stats = tracer.into_stats();
        println!(
            "{name:<28} correct {:>8}  wrong {:>6}  effective accuracy {:>5.1}%",
            stats.speculated_correct,
            stats.speculated_incorrect(),
            100.0 * stats.effective_accuracy()
        );
    }

    // Show the hybrid's internal routing explicitly by driving it by hand.
    let mut hybrid = provp::predictor::HybridPredictor::new(
        TableGeometry::new(128, 2),
        TableGeometry::new(384, 2),
    );
    let mut feed = provp::sim::FnTracer::new(|ev: &provp::sim::Retirement<'_>| {
        if let Some((_, _, value)) = ev.dest {
            hybrid.access(ev.addr, ev.instr.directive, value);
        }
    });
    run(&tagged, &mut feed, RunLimits::default())?;
    let _ = feed; // release the closure's borrow of `hybrid`
    println!(
        "\nhybrid routing: stride side holds {} entries ({} correct), \
         last-value side {} entries ({} correct)",
        hybrid.stride_occupancy(),
        hybrid.stride_stats().speculated_correct,
        hybrid.last_value_occupancy(),
        hybrid.last_value_stats().speculated_correct,
    );
    Ok(())
}
