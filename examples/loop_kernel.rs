//! The paper's own worked example (§3.2): `for (x=0; x<N; x++) A[x] = B[x] + C[x];`
//!
//! ```text
//! cargo run --release --example loop_kernel
//! ```
//!
//! We write the kernel in assembly, profile it, print the profile image in
//! the paper's three-column format (its Table 3.1), run the phase-3 pass at
//! a 90% threshold, and show that exactly the three index increments come
//! back tagged `.st` — matching the paper's walkthrough.

use provp::compiler::{annotate, ThresholdPolicy};
use provp::isa::asm::{assemble, disassemble};
use provp::profile::{format, ProfileCollector};
use provp::sim::{run, RunLimits};

const KERNEL: &str = "\
.name loop_kernel
.zero 192                  ; A, B, C: 64 words each
  li   r1, 0               ; x       (B index)
  li   r2, 64              ; C base offset index
  li   r3, 128             ; A base offset index
  li   r4, 64              ; loop bound
top:
  ld   r5, 0(r1)           ; load B[x]
  ld   r6, 0(r2)           ; load C[x]
  addi r2, r2, 1           ; increment C cursor
  add  r7, r5, r6          ; A[x] = B[x] + C[x]
  sd   r7, 0(r3)           ; store A[x]
  addi r3, r3, 1           ; increment A cursor
  addi r1, r1, 1           ; increment x
  bne  r1, r4, top
  halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let skeleton = assemble(KERNEL)?;
    // Fill B (words 0..64) and C (64..128) with varied data so the loads
    // behave like the paper's: poorly predictable. A is left zero.
    let mut data = skeleton.data().to_vec();
    let mut x: u64 = 0x2545_f491_4f6c_dd1d;
    for w in data.iter_mut().take(128) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *w = x % 10_000;
    }
    let program = provp::isa::Program::new("loop_kernel", skeleton.text().to_vec(), data);

    // Phase 2: profile on the tracing simulator.
    let mut collector = ProfileCollector::new("loop_kernel");
    run(&program, &mut collector, RunLimits::default())?;
    let image = collector.into_image();

    println!("--- profile image (the paper's Table 3.1 format) ---");
    print!("{}", format::to_paper_table(&image));

    // Phase 3: threshold 90%, stride-ratio heuristic 50%.
    let annotated = annotate(&program, &image, &ThresholdPolicy::new(0.9));
    println!("\n--- annotated binary ({}) ---", annotated.summary());
    print!("{}", disassemble(annotated.program()));

    // The paper: "the compiler would modify the opcodes of the add
    // operations [the three index increments] and insert the stride
    // directive. All other instructions are unaffected."
    let stride_tagged = annotated.summary().stride_tagged;
    assert_eq!(
        stride_tagged, 3,
        "expected exactly the three index increments"
    );
    println!("\n=> exactly the three index increments were tagged `.st`, as in the paper");
    Ok(())
}
