//! Head-to-head: profile-guided classification vs. saturating counters on
//! a finite prediction table (the paper's §5.2 scenario), for one
//! large-working-set workload.
//!
//! ```text
//! cargo run --release --example profile_vs_hardware [workload]
//! ```
//!
//! The hardware classifier must allocate every dynamic value producer into
//! the 512-entry table, so `gcc`'s ~900 hot producers thrash it; the
//! profile-guided classifier admits only directive-tagged instructions and
//! keeps the table clean.

use provp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|name| WorkloadKind::from_name(&name).ok_or(format!("unknown workload `{name}`")))
        .transpose()?
        .unwrap_or(WorkloadKind::Gcc);

    let suite = Suite::new();

    // Hardware-only: every producer competes for the table.
    let bare = suite.reference_program(kind, None);
    let mut fsm = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
    run(&bare, &mut fsm, RunLimits::default())?;
    let fsm = fsm.into_stats();

    // Profile-guided at a 90% threshold: only tagged producers enter.
    let tagged = suite.reference_program(kind, Some(0.9));
    let mut prof = PredictorTracer::new(PredictorConfig::spec_table_stride_profile().build());
    run(&tagged, &mut prof, RunLimits::default())?;
    let prof = prof.into_stats();

    println!("workload: {kind} (512-entry 2-way stride table)\n");
    println!("saturating counters : {fsm}");
    println!("profile-guided @90% : {prof}\n");
    println!(
        "correct predictions : {} -> {} ({:+.1}%)",
        fsm.speculated_correct,
        prof.speculated_correct,
        100.0 * (prof.speculated_correct as f64 / fsm.speculated_correct.max(1) as f64 - 1.0)
    );
    println!(
        "mispredictions      : {} -> {} ({:+.1}%)",
        fsm.speculated_incorrect(),
        prof.speculated_incorrect(),
        100.0
            * (prof.speculated_incorrect() as f64 / fsm.speculated_incorrect().max(1) as f64 - 1.0)
    );
    println!(
        "table allocations   : {} -> {} (evictions {} -> {})",
        fsm.allocations, prof.allocations, fsm.evictions, prof.evictions
    );
    Ok(())
}
