//! Record once, analyze many times: the SHADE-style trace workflow.
//!
//! ```text
//! cargo run --release --example trace_replay [workload]
//! ```
//!
//! Simulates one workload a single time while recording its retirement
//! trace (columnar), serialises the trace to bytes in the varint + delta
//! spill format, then replays it into three different consumers — the
//! profiler, a predictor, and the ILP machine — without touching the
//! simulator again.

use provp::core::PredictorTracer;
use provp::ilp::{IlpAnalyzer, IlpConfig};
use provp::predictor::PredictorConfig;
use provp::profile::ProfileCollector;
use provp::sim::{read_columns, run, write_columns, RunLimits, TraceRecorder};
use provp::workloads::{InputSet, Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|name| WorkloadKind::from_name(&name).ok_or(format!("unknown workload `{name}`")))
        .transpose()?
        .unwrap_or(WorkloadKind::Compress);
    let program = Workload::new(kind).program(&InputSet::reference());

    // Simulate once, recording the trace in columnar form.
    let mut recorder = TraceRecorder::new();
    let summary = run(&program, &mut recorder, RunLimits::default())?;
    println!("recorded {kind}: {summary}");

    // Ship it through a byte stream (a file, a pipe, ...).
    let mut bytes = Vec::new();
    write_columns(&mut bytes, recorder.columns())?;
    println!(
        "trace size: {} bytes ({:.1} B/instr)",
        bytes.len(),
        bytes.len() as f64 / summary.instructions() as f64
    );
    let columns = read_columns(bytes.as_slice())?;

    // Consumer 1: the phase-2 profiler.
    let mut profiler = ProfileCollector::new(kind.name());
    columns.replay(&program, &mut profiler)?;
    let image = profiler.into_image();
    println!("profiler:  {} static value producers", image.len());

    // Consumer 2: the finite-table predictor — fed from the value-event
    // columns alone, the same fast path the experiment suite replays.
    let mut predictor = PredictorConfig::spec_table_stride_fsm().build();
    for (addr, value) in columns.value_events() {
        let directive = program.text()[addr.index() as usize].directive;
        predictor.access(addr, directive, value);
    }
    println!("predictor: {}", predictor.stats());

    // A full-retirement replay through the tracer glue gives the same
    // statistics as the columnar value-event scan.
    let mut tracer = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
    columns.replay(&program, &mut tracer)?;
    assert_eq!(tracer.stats(), predictor.stats());

    // Consumer 3: the abstract ILP machine.
    let mut ilp = IlpAnalyzer::new(IlpConfig::paper_no_vp());
    columns.replay(&program, &mut ilp)?;
    println!("ilp:       {}", ilp.finish());
    Ok(())
}
