//! Record once, analyze many times: the SHADE-style trace workflow.
//!
//! ```text
//! cargo run --release --example trace_replay [workload]
//! ```
//!
//! Simulates one workload a single time while recording its retirement
//! trace, serialises the trace to bytes, then replays it into three
//! different consumers — the profiler, a predictor, and the ILP machine —
//! without touching the simulator again.

use provp::core::PredictorTracer;
use provp::ilp::{IlpAnalyzer, IlpConfig};
use provp::predictor::PredictorConfig;
use provp::profile::ProfileCollector;
use provp::sim::{read_trace, replay, run, write_trace, RunLimits, TraceRecorder};
use provp::workloads::{InputSet, Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = std::env::args()
        .nth(1)
        .map(|name| WorkloadKind::from_name(&name).ok_or(format!("unknown workload `{name}`")))
        .transpose()?
        .unwrap_or(WorkloadKind::Compress);
    let program = Workload::new(kind).program(&InputSet::reference());

    // Simulate once, recording the trace.
    let mut recorder = TraceRecorder::new();
    let summary = run(&program, &mut recorder, RunLimits::default())?;
    println!("recorded {kind}: {summary}");

    // Ship it through a byte stream (a file, a pipe, ...).
    let mut bytes = Vec::new();
    write_trace(&mut bytes, recorder.events())?;
    println!(
        "trace size: {} bytes ({:.1} B/instr)",
        bytes.len(),
        bytes.len() as f64 / summary.instructions() as f64
    );
    let events = read_trace(bytes.as_slice())?;

    // Consumer 1: the phase-2 profiler.
    let mut profiler = ProfileCollector::new(kind.name());
    replay(&program, &events, &mut profiler)?;
    let image = profiler.into_image();
    println!("profiler:  {} static value producers", image.len());

    // Consumer 2: the finite-table predictor.
    let mut predictor = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
    replay(&program, &events, &mut predictor)?;
    println!("predictor: {}", predictor.stats());

    // Consumer 3: the abstract ILP machine.
    let mut ilp = IlpAnalyzer::new(IlpConfig::paper_no_vp());
    replay(&program, &events, &mut ilp)?;
    println!("ilp:       {}", ilp.finish());
    Ok(())
}
